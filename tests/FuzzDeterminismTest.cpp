//===- FuzzDeterminismTest.cpp - Fuzzer determinism contracts -------------===//
//
// The fuzzer's core guarantee: one 64-bit fuzz seed fully determines the
// corpus AND the campaign's canonical outcome document — at any worker
// count, with the execution cache on or off, and regardless of whether a
// shared cross-scenario cache is warm. Also pins the
// rejected-generated-client path: a template referencing a missing API
// must be counted and skipped (fuzz_gen_rejected_total), never crash the
// campaign.
//
//===----------------------------------------------------------------------===//

#include "cache/ExecCache.h"
#include "fuzz/Campaign.h"
#include "fuzz/Generator.h"
#include "fuzz/LitmusCorpus.h"
#include "obs/Obs.h"
#include "support/Json.h"

#include "gtest/gtest.h"

#include <sstream>

using namespace dfence;
using namespace dfence::fuzz;

namespace {

GeneratorOptions smallOpts(uint64_t Seed = 0xd06, unsigned Count = 12) {
  GeneratorOptions O;
  O.FuzzSeed = Seed;
  O.Count = Count;
  return O;
}

CampaignConfig smallCfg() {
  CampaignConfig C;
  C.Model = "pso";
  C.K = 40;
  C.Rounds = 4;
  return C;
}

std::string corpusBytes(const std::vector<Scenario> &Corpus) {
  std::string S;
  for (const Scenario &Sc : Corpus) {
    S += Sc.Name + "\x1f" + Sc.Family + "\x1f" + Sc.Source + "\x1f" +
         Sc.ClientDsl + "\x1f" + Sc.InitFunc + "\x1f" + Sc.SpecName +
         "\x1f" + Sc.SeqSpecName + "\x1f" +
         std::to_string(Sc.Seed) + "\x1e";
  }
  return S;
}

TEST(FuzzGenerator, SameSeedByteIdenticalCorpus) {
  GeneratorOptions O = smallOpts(42, 50);
  std::vector<Scenario> A = generateScenarios(O);
  std::vector<Scenario> B = generateScenarios(O);
  ASSERT_EQ(A.size(), 50u);
  EXPECT_EQ(corpusBytes(A), corpusBytes(B));
}

TEST(FuzzGenerator, DifferentSeedDifferentCorpus) {
  std::vector<Scenario> A = generateScenarios(smallOpts(1, 20));
  std::vector<Scenario> B = generateScenarios(smallOpts(2, 20));
  EXPECT_NE(corpusBytes(A), corpusBytes(B));
}

TEST(FuzzGenerator, PrefixStability) {
  // Growing the corpus never perturbs earlier scenarios: scenario i's
  // Rng is private (deriveSeed(FuzzSeed, "scenario-i")).
  std::vector<Scenario> Small = generateScenarios(smallOpts(7, 10));
  std::vector<Scenario> Big = generateScenarios(smallOpts(7, 30));
  for (size_t I = 0; I != Small.size(); ++I) {
    EXPECT_EQ(Small[I].Source, Big[I].Source);
    EXPECT_EQ(Small[I].ClientDsl, Big[I].ClientDsl);
    EXPECT_EQ(Small[I].Seed, Big[I].Seed);
  }
}

TEST(FuzzGenerator, FamilyFilterHonored) {
  GeneratorOptions O = smallOpts(3, 25);
  O.Families = {"queue", "set"};
  for (const Scenario &S : generateScenarios(O))
    EXPECT_TRUE(S.Family == "queue" || S.Family == "set") << S.Family;
}

TEST(FuzzGenerator, ScenarioSeedsNeverZero) {
  // Seed 0 means "use the default" in fillConfig; a zero scenario seed
  // would silently collapse distinct scenarios onto one schedule stream.
  for (const Scenario &S : generateScenarios(smallOpts(9, 40)))
    EXPECT_NE(S.Seed, 0u);
}

TEST(FuzzCampaign, CanonicalJsonInvariantAcrossJobsAndCache) {
  std::vector<Scenario> Corpus = generateScenarios(smallOpts());
  for (Scenario &S : litmusScenarios(0xd06))
    Corpus.push_back(std::move(S));

  CampaignConfig C1 = smallCfg();
  C1.Jobs = 1;
  CampaignResult R1 = runCampaign(Corpus, C1);

  CampaignConfig C8 = smallCfg();
  C8.Jobs = 8;
  CampaignResult R8 = runCampaign(Corpus, C8);

  CampaignConfig COff = smallCfg();
  COff.CacheOn = false;
  CampaignResult ROff = runCampaign(Corpus, COff);

  // Warm shared cache: cold run populates, second run replays.
  cache::ExecCache Shared;
  CampaignConfig CWarm = smallCfg();
  CWarm.SharedCache = &Shared;
  runCampaign(Corpus, CWarm);
  CampaignResult RWarm = runCampaign(Corpus, CWarm);

  std::string Base = R1.canonicalJson(C1).dump();
  EXPECT_EQ(Base, R8.canonicalJson(C1).dump());
  EXPECT_EQ(Base, ROff.canonicalJson(C1).dump());
  EXPECT_EQ(Base, RWarm.canonicalJson(C1).dump());
  EXPECT_GT(R1.Violating, 0u);
  EXPECT_FALSE(R1.Distinct.empty());
}

TEST(FuzzCampaign, RejectedTemplatesCountedAndSkipped) {
  // Every scenario wraps thread 0 into a template, and the injected
  // template calls an API the module does not define — the frontend
  // rejects those modules. The campaign must count them and keep going.
  GeneratorOptions O = smallOpts(0xbad, 10);
  O.TemplateProb = 1.0;
  O.ExtraTemplates.push_back(
      {"broken_mix", "int broken_mix(int n) {\n"
                     "  missing_api(n);\n"
                     "  return 0;\n"
                     "}\n"});
  std::vector<Scenario> Corpus = generateScenarios(O);

  obs::Registry Metrics;
  obs::ObsContext Obs;
  Obs.Metrics = &Metrics;
  CampaignConfig C = smallCfg();
  C.Obs = &Obs;
  CampaignResult R = runCampaign(Corpus, C);

  EXPECT_EQ(R.Scenarios, Corpus.size());
  EXPECT_GT(R.Rejected, 0u);
  uint64_t Rejected = 0, Reasons = 0;
  for (const ScenarioOutcome &Out : R.Outcomes)
    if (Out.Status == "rejected") {
      ++Rejected;
      if (!Out.Reason.empty())
        ++Reasons;
      EXPECT_TRUE(Out.FingerprintHex.empty());
    }
  EXPECT_EQ(Rejected, R.Rejected);
  EXPECT_EQ(Reasons, Rejected) << "rejections must carry a reason";
  EXPECT_EQ(Metrics.counter("fuzz_gen_rejected_total").value(),
            R.Rejected);
  EXPECT_EQ(Metrics.counter("fuzz_scenarios_total").value(),
            R.Scenarios);
}

TEST(FuzzCampaign, FingerprintCanonicalization) {
  // Order- and duplicate-insensitive over fences; sensitive to family
  // and status.
  Fingerprint A = fingerprintOutcome(
      "wsq", "converged", {"(put, 9:10) st-st", "(take, 3:4) st-ld"});
  Fingerprint B = fingerprintOutcome(
      "wsq", "converged",
      {"(take, 3:4) st-ld", "(put, 9:10) st-st", "(put, 9:10) st-st"});
  EXPECT_EQ(A.Hash, B.Hash);
  EXPECT_EQ(A.Canon, B.Canon);
  Fingerprint C = fingerprintOutcome(
      "queue", "converged", {"(put, 9:10) st-st", "(take, 3:4) st-ld"});
  EXPECT_NE(A.Hash, C.Hash);
  Fingerprint D = fingerprintOutcome(
      "wsq", "degraded", {"(put, 9:10) st-st", "(take, 3:4) st-ld"});
  EXPECT_NE(A.Hash, D.Hash);
}

TEST(FuzzCampaign, ReportMirrorsOutcomes) {
  std::vector<Scenario> Corpus = generateScenarios(smallOpts(5, 6));
  std::ostringstream Report;
  CampaignConfig C = smallCfg();
  C.Report = &Report;
  CampaignResult R = runCampaign(Corpus, C);
  // One JSONL line per scenario plus the summary line.
  size_t Lines = 0;
  std::istringstream In(Report.str());
  std::string Line, Last;
  while (std::getline(In, Line)) {
    ++Lines;
    Last = Line;
    std::string Error;
    auto J = Json::parse(Line, Error);
    ASSERT_TRUE(J) << Error;
    ASSERT_NE(J->find("type"), nullptr);
  }
  EXPECT_EQ(Lines, R.Scenarios + 1);
  std::string Error;
  auto Summary = Json::parse(Last, Error);
  ASSERT_TRUE(Summary);
  EXPECT_EQ(Summary->find("type")->asString(), "summary");
  EXPECT_NE(Summary->find("elapsedUs"), nullptr);
}

} // namespace
