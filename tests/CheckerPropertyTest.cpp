//===- CheckerPropertyTest.cpp - Checkers vs brute-force reference --------===//
//
// Cross-validates the memoized linearizability/SC searches against a
// naive reference that enumerates ALL permutations of the history,
// on randomly generated small queue histories.
//
//===----------------------------------------------------------------------===//

#include "spec/Checkers.h"
#include "spec/Specs.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

using namespace dfence;
using namespace dfence::spec;
using vm::EmptyVal;
using vm::History;
using vm::OpRecord;
using vm::Word;

namespace {

/// Reference: tries every permutation of indices; accepts when the spec
/// accepts the sequence and the order constraint holds.
bool referenceCheck(const History &H, const SpecFactory &Factory,
                    bool RealTime) {
  std::vector<size_t> Perm(H.Ops.size());
  std::iota(Perm.begin(), Perm.end(), 0);
  std::sort(Perm.begin(), Perm.end());
  do {
    // Order constraints.
    bool OrderOk = true;
    for (size_t I = 0; I + 1 < Perm.size() && OrderOk; ++I) {
      for (size_t J = I + 1; J < Perm.size() && OrderOk; ++J) {
        const OpRecord &A = H.Ops[Perm[I]];
        const OpRecord &B = H.Ops[Perm[J]];
        if (RealTime) {
          if (B.precedes(A))
            OrderOk = false;
        } else {
          if (B.Thread == A.Thread && B.InvokeSeq < A.InvokeSeq)
            OrderOk = false;
        }
      }
    }
    if (!OrderOk)
      continue;
    auto State = Factory();
    bool SpecOk = true;
    for (size_t I : Perm) {
      if (!State->apply(H.Ops[I])) {
        SpecOk = false;
        break;
      }
    }
    if (SpecOk)
      return true;
  } while (std::next_permutation(Perm.begin(), Perm.end()));
  return false;
}

/// Generates a random complete queue history of <= 7 operations over <= 3
/// threads, with plausible-but-sometimes-wrong returns.
History randomQueueHistory(Rng &R) {
  History H;
  unsigned NumThreads = 1 + static_cast<unsigned>(R.nextBelow(3));
  unsigned NumOps = 2 + static_cast<unsigned>(R.nextBelow(6));
  uint64_t Time = 1;
  std::vector<Word> Enqueued;
  for (unsigned I = 0; I < NumOps; ++I) {
    OpRecord Op;
    Op.Thread = static_cast<uint32_t>(R.nextBelow(NumThreads));
    Op.Completed = true;
    Op.InvokeSeq = Time++;
    // Randomly overlap with the next op.
    Op.RespondSeq = Op.InvokeSeq + 1 + R.nextBelow(4);
    Time = std::max<uint64_t>(Time, Op.RespondSeq - 1);
    if (R.nextBool(0.5)) {
      Op.Func = "enqueue";
      Word V = 1 + R.nextBelow(4);
      Op.Args = {V};
      Enqueued.push_back(V);
    } else {
      Op.Func = "dequeue";
      // Mostly return something that was enqueued, sometimes EMPTY,
      // occasionally garbage.
      double Dice = R.nextDouble();
      if (Dice < 0.2 || Enqueued.empty())
        Op.Ret = EmptyVal;
      else if (Dice < 0.9)
        Op.Ret = Enqueued[R.nextBelow(Enqueued.size())];
      else
        Op.Ret = 77;
    }
    H.Ops.push_back(std::move(Op));
  }
  // Per-thread invocations must be sequential: repair any overlap inside
  // a thread by serializing per-thread ops.
  std::vector<uint64_t> LastResp(NumThreads, 0);
  uint64_t T2 = 1;
  for (OpRecord &Op : H.Ops) {
    Op.InvokeSeq = std::max(T2++, LastResp[Op.Thread] + 1);
    Op.RespondSeq = Op.InvokeSeq + 1 + R.nextBelow(5);
    LastResp[Op.Thread] = Op.RespondSeq;
    T2 = std::max(T2, Op.InvokeSeq + 1);
  }
  return H;
}

class CheckerPropertyTest : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(CheckerPropertyTest, LinearizabilityAgreesWithReference) {
  Rng R(static_cast<uint64_t>(GetParam()) * 7907 + 3);
  for (int Case = 0; Case < 20; ++Case) {
    History H = randomQueueHistory(R);
    bool Fast = isLinearizable(H, QueueSpec::factory());
    bool Ref = referenceCheck(H, QueueSpec::factory(), /*RealTime=*/true);
    ASSERT_EQ(Fast, Ref) << H.str();
  }
}

TEST_P(CheckerPropertyTest, SequentialConsistencyAgreesWithReference) {
  Rng R(static_cast<uint64_t>(GetParam()) * 104729 + 11);
  for (int Case = 0; Case < 20; ++Case) {
    History H = randomQueueHistory(R);
    bool Fast = isSequentiallyConsistent(H, QueueSpec::factory());
    bool Ref =
        referenceCheck(H, QueueSpec::factory(), /*RealTime=*/false);
    ASSERT_EQ(Fast, Ref) << H.str();
  }
}

TEST_P(CheckerPropertyTest, LinearizableImpliesSequentiallyConsistent) {
  Rng R(static_cast<uint64_t>(GetParam()) * 31337 + 7);
  for (int Case = 0; Case < 30; ++Case) {
    History H = randomQueueHistory(R);
    if (isLinearizable(H, QueueSpec::factory()))
      EXPECT_TRUE(isSequentiallyConsistent(H, QueueSpec::factory()))
          << "linearizability is strictly stronger\n"
          << H.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Random, CheckerPropertyTest,
                         ::testing::Range(0, 25));

//===----------------------------------------------------------------------===//
// The concurrent-EMPTY relaxation
//===----------------------------------------------------------------------===//

namespace {

OpRecord mkOp(const char *F, std::vector<Word> Args, Word Ret,
              uint32_t Thread, uint64_t Inv, uint64_t Res) {
  OpRecord O;
  O.Func = F;
  O.Args = std::move(Args);
  O.Ret = Ret;
  O.Thread = Thread;
  O.InvokeSeq = Inv;
  O.RespondSeq = Res;
  O.Completed = true;
  return O;
}

} // namespace

TEST(RelaxEmptyTest, DropsOnlyOverlappingEmptyWsqOps) {
  History H;
  H.Ops = {
      mkOp("put", {1}, 0, 0, 1, 10),          // overlaps everything
      mkOp("steal", {}, EmptyVal, 1, 2, 3),   // overlapping EMPTY: drop
      mkOp("take", {}, EmptyVal, 0, 11, 12),  // non-overlapping: keep
      mkOp("steal", {}, 1, 1, 13, 14),        // successful: keep
      mkOp("dequeue", {}, EmptyVal, 1, 4, 5), // not a WSQ op: keep
  };
  History Out = relaxConcurrentEmptyOps(H);
  ASSERT_EQ(Out.Ops.size(), 4u);
  for (const OpRecord &Op : Out.Ops)
    EXPECT_FALSE(Op.Func == "steal" && Op.Ret == EmptyVal &&
                 Op.InvokeSeq == 2);
}

TEST(RelaxEmptyTest, Fig2cViolationSurvivesRelaxation) {
  // Non-overlapping EMPTY steal after a completed put: still flagged.
  History H;
  H.Ops = {mkOp("put", {1}, 0, 0, 1, 2),
           mkOp("steal", {}, EmptyVal, 1, 3, 4)};
  History Out = relaxConcurrentEmptyOps(H);
  ASSERT_EQ(Out.Ops.size(), 2u);
  EXPECT_FALSE(isLinearizable(Out, WsqSpec::factory()));
}

TEST(RelaxEmptyTest, OverlappingEmptyStealAccepted) {
  // The same EMPTY steal overlapping the put is a legal abort.
  History H;
  H.Ops = {mkOp("put", {1}, 0, 0, 1, 4),
           mkOp("steal", {}, EmptyVal, 1, 2, 3)};
  History Out = relaxConcurrentEmptyOps(H);
  EXPECT_EQ(Out.Ops.size(), 1u);
  EXPECT_TRUE(isLinearizable(Out, WsqSpec::factory()));
}
