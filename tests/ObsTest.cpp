//===- ObsTest.cpp - Observability layer unit tests -----------------------===//
//
// Covers the src/obs/ building blocks in isolation: sharded counter
// merging (including genuinely concurrent increments), gauge semantics,
// histogram bucketing and percentile interpolation, registry export
// well-formedness (JSON and Prometheus), Chrome-trace JSON structure,
// null-sink safety of the Span/OBS_* helpers, the structured logger's
// level filter and JSON-lines shape, SAT solve-stats population, and the
// metrics snapshot riding inside crash-repro bundles.
//
//===----------------------------------------------------------------------===//

#include "harness/ReproBundle.h"
#include "obs/Convergence.h"
#include "obs/Obs.h"
#include "sat/MinimalModels.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace dfence;
using namespace dfence::obs;

namespace {

/// Runs \p Fn with a temporary FILE* and returns everything written.
template <class Fn> std::string captureFile(Fn &&F) {
  FILE *Tmp = std::tmpfile();
  EXPECT_NE(Tmp, nullptr);
  F(Tmp);
  std::fflush(Tmp);
  long Len = std::ftell(Tmp);
  std::rewind(Tmp);
  std::string Out(static_cast<size_t>(Len), '\0');
  size_t Read = std::fread(Out.data(), 1, Out.size(), Tmp);
  Out.resize(Read);
  std::fclose(Tmp);
  return Out;
}

Json parseOrFail(const std::string &Text) {
  std::string Error;
  std::optional<Json> J = Json::parse(Text, Error);
  EXPECT_TRUE(J.has_value()) << Error << "\nin: " << Text;
  return J ? *J : Json();
}

} // namespace

TEST(CounterTest, ShardsMergeInAnyDistribution) {
  Counter C;
  // The same total spread across different shards must read back as the
  // same merged value — this is the heart of the cross-jobs determinism
  // contract (shard choice encodes *where* an event was counted, never
  // *how many*).
  C.add(5, 0);
  C.add(7, 3);
  C.add(1, 31);
  C.add(2, 32); // Wraps to shard 0.
  EXPECT_EQ(C.value(), 15u);

  Counter D;
  D.add(15, 9);
  EXPECT_EQ(D.value(), C.value());
}

TEST(CounterTest, ConcurrentAddsAreLossless) {
  Counter C;
  constexpr unsigned Threads = 8;
  constexpr uint64_t PerThread = 20000;
  std::vector<std::thread> Ts;
  for (unsigned I = 0; I != Threads; ++I)
    Ts.emplace_back([&C, I] {
      for (uint64_t N = 0; N != PerThread; ++N)
        C.add(1, I);
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(C.value(), Threads * PerThread);
}

TEST(GaugeTest, SetAddMax) {
  Gauge G;
  EXPECT_EQ(G.value(), 0.0);
  G.set(2.5);
  EXPECT_EQ(G.value(), 2.5);
  G.add(1.5);
  EXPECT_EQ(G.value(), 4.0);
  G.max(3.0); // Below current: no effect.
  EXPECT_EQ(G.value(), 4.0);
  G.max(10.0);
  EXPECT_EQ(G.value(), 10.0);
}

TEST(HistogramTest, BucketingRespectsUpperBounds) {
  Histogram H({1.0, 10.0, 100.0});
  ASSERT_EQ(H.numBuckets(), 4u); // Three edges plus overflow.
  H.observe(0.5);  // <= 1
  H.observe(1.0);  // <= 1 (edges are inclusive upper bounds)
  H.observe(5.0);  // <= 10
  H.observe(99.0); // <= 100
  H.observe(1e6);  // overflow
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(2), 1u);
  EXPECT_EQ(H.bucketCount(3), 1u);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_DOUBLE_EQ(H.minimum(), 0.5);
  EXPECT_DOUBLE_EQ(H.maximum(), 1e6);
  EXPECT_GT(H.sum(), 1e6 - 1);
}

TEST(HistogramTest, PercentileInterpolatesWithinBucket) {
  Histogram H({10.0, 20.0, 30.0});
  EXPECT_EQ(H.percentile(0.5), 0.0); // Empty histogram.
  for (int I = 0; I != 100; ++I)
    H.observe(15.0); // All mass in the (10, 20] bucket.
  double P50 = H.percentile(0.50);
  EXPECT_GE(P50, 10.0);
  EXPECT_LE(P50, 20.0);
  EXPECT_GE(H.percentile(0.99), P50);
}

TEST(HistogramTest, DefaultTimeBoundsAreStrictlyIncreasing) {
  std::vector<double> B = Histogram::defaultTimeBoundsUs();
  ASSERT_GE(B.size(), 2u);
  for (size_t I = 1; I != B.size(); ++I)
    EXPECT_LT(B[I - 1], B[I]) << "at index " << I;
}

TEST(RegistryTest, MetricsAreIdempotentByName) {
  Registry R;
  Counter &A = R.counter("x_total");
  Counter &B = R.counter("x_total");
  EXPECT_EQ(&A, &B);
  Gauge &G1 = R.gauge("g");
  Gauge &G2 = R.gauge("g");
  EXPECT_EQ(&G1, &G2);
  Histogram &H1 = R.histogram("h", {1.0, 2.0});
  Histogram &H2 = R.histogram("h", {9.0}); // Bounds ignored after creation.
  EXPECT_EQ(&H1, &H2);
  EXPECT_EQ(H2.bounds().size(), 2u);
}

TEST(RegistryTest, JsonExportsParseAndSort) {
  Registry R;
  // Registered intentionally out of order; exports must sort by name.
  R.counter("zeta_total").add(3);
  R.counter("alpha_total").add(1);
  R.gauge("util").set(0.5);
  R.histogram("lat_us", {10.0, 100.0}).observe(42.0);

  Json Full = parseOrFail(R.toJson().dump(2));
  ASSERT_NE(Full.find("schema"), nullptr);
  const Json *Counters = Full.find("counters");
  ASSERT_NE(Counters, nullptr);
  ASSERT_EQ(Counters->members().size(), 2u);
  EXPECT_EQ(Counters->members()[0].first, "alpha_total");
  EXPECT_EQ(Counters->members()[1].first, "zeta_total");
  EXPECT_EQ(Counters->members()[1].second.asU64(), 3u);
  ASSERT_NE(Full.find("gauges"), nullptr);
  ASSERT_NE(Full.find("histograms"), nullptr);

  // The deterministic subset holds counters only.
  Json Det = parseOrFail(R.countersJson().dump());
  ASSERT_NE(Det.find("counters"), nullptr);
  EXPECT_EQ(Det.find("gauges"), nullptr);
  EXPECT_EQ(Det.find("histograms"), nullptr);
}

TEST(RegistryTest, PrometheusExposition) {
  Registry R;
  R.counter("synth_rounds_total").add(4);
  R.gauge("vm_buf_high_water").set(6);
  R.histogram("queue_wait_us", {1.0, 10.0}).observe(3.0);
  std::string Text = R.toPrometheus();
  EXPECT_NE(Text.find("# TYPE dfence_synth_rounds_total counter"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("dfence_synth_rounds_total 4"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE dfence_vm_buf_high_water gauge"),
            std::string::npos);
  EXPECT_NE(Text.find("dfence_queue_wait_us_bucket"), std::string::npos);
  EXPECT_NE(Text.find("dfence_queue_wait_us_count 1"), std::string::npos);
  EXPECT_NE(Text.find("le=\"+Inf\""), std::string::npos);
}

TEST(RegistryTest, PrometheusHistogramExpositionIsCumulative) {
  // The histogram exposition pinned byte-for-byte: cumulative _bucket
  // series with inclusive le edges, the +Inf overflow line equal to
  // _count, then _sum and _count. Scrapers rely on this exact shape.
  Registry R;
  Histogram &H = R.histogram("lat_us", {1.0, 10.0});
  H.observe(0.5);
  H.observe(5.0);
  H.observe(5.0);
  H.observe(100.0);
  EXPECT_EQ(R.toPrometheus(),
            "# TYPE dfence_lat_us histogram\n"
            "dfence_lat_us_bucket{le=\"1\"} 1\n"
            "dfence_lat_us_bucket{le=\"10\"} 3\n"
            "dfence_lat_us_bucket{le=\"+Inf\"} 4\n"
            "dfence_lat_us_sum 110.5\n"
            "dfence_lat_us_count 4\n");
}

TEST(RegistryTest, HistogramJsonCarriesPercentilesAndBuckets) {
  Registry R;
  Histogram &H = R.histogram("h_us", {1.0, 10.0, 100.0});
  for (int I = 0; I != 90; ++I)
    H.observe(5.0);
  for (int I = 0; I != 10; ++I)
    H.observe(50.0);
  Json Doc = parseOrFail(R.toJson().dump());
  const Json *HJ = Doc.find("histograms")->find("h_us");
  ASSERT_NE(HJ, nullptr);
  ASSERT_NE(HJ->find("p50"), nullptr);
  ASSERT_NE(HJ->find("p90"), nullptr);
  ASSERT_NE(HJ->find("p95"), nullptr);
  ASSERT_NE(HJ->find("p99"), nullptr);
  double P50 = HJ->find("p50")->asDouble(0);
  double P90 = HJ->find("p90")->asDouble(0);
  double P99 = HJ->find("p99")->asDouble(0);
  EXPECT_LE(P50, P90);
  EXPECT_LE(P90, P99);
  // 90% of the mass is in (1, 10], the rest in (10, 100]: p50 must
  // interpolate inside the second bucket, p99 inside the third.
  EXPECT_GT(P50, 1.0);
  EXPECT_LE(P50, 10.0);
  EXPECT_GT(P99, 10.0);
  EXPECT_LE(P99, 100.0);
  // Empty buckets are skipped: only the two populated ones appear.
  const Json *Buckets = HJ->find("buckets");
  ASSERT_NE(Buckets, nullptr);
  ASSERT_EQ(Buckets->items().size(), 2u);
  EXPECT_EQ(Buckets->items()[0].find("count")->asU64(), 90u);
  EXPECT_EQ(Buckets->items()[1].find("count")->asU64(), 10u);
}

TEST(TraceTest, ChromeTraceJsonIsWellFormed) {
  TraceSink Sink;
  Sink.setThreadName(0, "merge");
  Sink.setThreadName(1, "worker-1");
  {
    OBS_SPAN(Round, &Sink, "round", "synth", 0);
    Round.arg("round", uint64_t(1));
    OBS_SPAN(Slot, &Sink, "slot", "exec", 1);
    Slot.arg("index", uint64_t(17));
    Slot.arg("outcome", std::string("ok"));
  }
  Json Args = Json::object();
  Args.set("round", Json::number(uint64_t(1)));
  Sink.instant("first_violation", "synth", 0, std::move(Args));
  EXPECT_EQ(Sink.eventCount(), 3u); // Metadata events not counted.

  Json Doc = parseOrFail(Sink.toJson().dump());
  const Json *Events = Doc.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  // 3 real events + process_name + 2 thread_name metadata records.
  EXPECT_EQ(Events->items().size(), 6u);
  unsigned Complete = 0, Instant = 0, Meta = 0;
  bool SawSlotArgs = false;
  for (const Json &E : Events->items()) {
    const std::string &Ph = E.find("ph")->asString();
    if (Ph == "X") {
      ++Complete;
      ASSERT_NE(E.find("ts"), nullptr);
      ASSERT_NE(E.find("dur"), nullptr);
      if (E.find("name")->asString() == "slot") {
        const Json *A = E.find("args");
        ASSERT_NE(A, nullptr);
        EXPECT_EQ(A->find("index")->asU64(), 17u);
        EXPECT_EQ(A->find("outcome")->asString(), "ok");
        EXPECT_EQ(E.find("tid")->asU64(), 1u);
        SawSlotArgs = true;
      }
    } else if (Ph == "i") {
      ++Instant;
    } else if (Ph == "M") {
      ++Meta;
      const std::string &Name = E.find("name")->asString();
      EXPECT_TRUE(Name == "thread_name" || Name == "process_name")
          << Name;
    }
  }
  EXPECT_EQ(Complete, 2u);
  EXPECT_EQ(Instant, 1u);
  EXPECT_EQ(Meta, 3u);
  EXPECT_TRUE(SawSlotArgs);
}

TEST(TraceTest, SpanNestingOrdersTimestamps) {
  TraceSink Sink;
  {
    OBS_SPAN(Outer, &Sink, "outer", "t", 0);
    OBS_SPAN(Inner, &Sink, "inner", "t", 0);
  } // Inner closes first (reverse declaration order).
  Json Doc = parseOrFail(Sink.toJson().dump());
  std::vector<Json> Ev;
  for (const Json &E : Doc.find("traceEvents")->items())
    if (E.find("ph")->asString() == "X")
      Ev.push_back(E);
  ASSERT_EQ(Ev.size(), 2u);
  EXPECT_EQ(Ev[0].find("name")->asString(), "inner");
  EXPECT_EQ(Ev[1].find("name")->asString(), "outer");
  // The outer span must fully contain the inner one.
  uint64_t InS = Ev[0].find("ts")->asU64();
  uint64_t InE = InS + Ev[0].find("dur")->asU64();
  uint64_t OutS = Ev[1].find("ts")->asU64();
  uint64_t OutE = OutS + Ev[1].find("dur")->asU64();
  EXPECT_LE(OutS, InS);
  EXPECT_GE(OutE, InE);
}

TEST(TraceTest, ConcurrentSpansFromEightWorkersStayWellFormed) {
  // The sink's contract under --jobs 8: eight workers emitting nested
  // spans concurrently (as the exec pool does per slot) must produce a
  // parseable trace where every thread's inner span is contained in its
  // outer span and nothing is lost or interleaved across threads.
  TraceSink Sink;
  constexpr unsigned Workers = 8;
  constexpr unsigned SpansPerWorker = 50;
  std::vector<std::thread> Ts;
  for (unsigned W = 0; W != Workers; ++W)
    Ts.emplace_back([&Sink, W] {
      for (unsigned I = 0; I != SpansPerWorker; ++I) {
        OBS_SPAN(Outer, &Sink, "slot", "exec", W);
        Outer.arg("index", static_cast<uint64_t>(I));
        OBS_SPAN(Inner, &Sink, "check", "exec", W);
      }
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(Sink.eventCount(), Workers * SpansPerWorker * 2);

  Json Doc = parseOrFail(Sink.toJson().dump());
  // Per thread: collect complete events in emission order (the sink
  // appends at span end, so inner precedes its outer), then check
  // pairwise containment and per-thread count.
  std::vector<std::vector<Json>> ByTid(Workers);
  for (const Json &E : Doc.find("traceEvents")->items()) {
    if (E.find("ph")->asString() != "X")
      continue;
    uint64_t Tid = E.find("tid")->asU64();
    ASSERT_LT(Tid, Workers);
    ByTid[Tid].push_back(E);
  }
  for (unsigned W = 0; W != Workers; ++W) {
    ASSERT_EQ(ByTid[W].size(), SpansPerWorker * 2) << "tid " << W;
    for (unsigned I = 0; I != SpansPerWorker; ++I) {
      const Json &Inner = ByTid[W][2 * I];
      const Json &Outer = ByTid[W][2 * I + 1];
      EXPECT_EQ(Inner.find("name")->asString(), "check");
      EXPECT_EQ(Outer.find("name")->asString(), "slot");
      uint64_t InS = Inner.find("ts")->asU64();
      uint64_t InE = InS + Inner.find("dur")->asU64();
      uint64_t OutS = Outer.find("ts")->asU64();
      uint64_t OutE = OutS + Outer.find("dur")->asU64();
      EXPECT_LE(OutS, InS) << "tid " << W << " span " << I;
      EXPECT_GE(OutE, InE) << "tid " << W << " span " << I;
    }
  }
}

TEST(TraceTest, NullSinkSpanAndCountersAreSafe) {
  // The disabled-observability path: every helper must be callable with
  // null sinks and do nothing.
  {
    OBS_SPAN(S, static_cast<TraceSink *>(nullptr), "x", "y", 0);
    S.arg("k", uint64_t(1));
    S.arg("d", 2.0);
    S.arg("s", std::string("v"));
    S.end();
    S.end(); // Idempotent on null too.
  }
  Counter *C = nullptr;
  OBS_COUNT(C, 5);
  ObsContext Empty;
  EXPECT_EQ(counterOrNull(nullptr, "a"), nullptr);
  EXPECT_EQ(counterOrNull(&Empty, "a"), nullptr);
  EXPECT_EQ(gaugeOrNull(&Empty, "a"), nullptr);
  EXPECT_EQ(histogramOrNull(&Empty, "a"), nullptr);
  EXPECT_EQ(traceOrNull(&Empty), nullptr);
  EXPECT_EQ(traceOrNull(nullptr), nullptr);
  EXPECT_EQ(logOrNull(&Empty), nullptr);
  EXPECT_EQ(profilerOrNull(&Empty), nullptr);
  EXPECT_EQ(profilerOrNull(nullptr), nullptr);
}

TEST(TraceTest, SpanEndIsIdempotent) {
  TraceSink Sink;
  {
    OBS_SPAN(S, &Sink, "once", "t", 0);
    S.end();
    S.end(); // Second end and the destructor must not re-emit.
  }
  EXPECT_EQ(Sink.eventCount(), 1u);
}

TEST(LogTest, LevelFilterAndPlainShape) {
  std::string Out = captureFile([](FILE *F) {
    Logger L(LogLevel::Warn, /*JsonLines=*/false, F);
    EXPECT_FALSE(L.enabled(LogLevel::Debug));
    EXPECT_TRUE(L.enabled(LogLevel::Error));
    L.debug("synth", "hidden");
    L.info("synth", "hidden too");
    L.warn("synth", "degraded", {{"reason", "budget"}});
  });
  EXPECT_EQ(Out.find("hidden"), std::string::npos);
  EXPECT_NE(Out.find("[warn]"), std::string::npos) << Out;
  EXPECT_NE(Out.find("synth"), std::string::npos);
  EXPECT_NE(Out.find("reason=budget"), std::string::npos) << Out;
}

TEST(LogTest, JsonLinesParseIndividually) {
  std::string Out = captureFile([](FILE *F) {
    Logger L(LogLevel::Debug, /*JsonLines=*/true, F);
    L.info("cli", "start", {{"model", "pso"}, {"k", "100"}});
    L.error("harness", "timeout", {{"exec", "12"}});
  });
  std::vector<std::string> Lines;
  size_t Pos = 0;
  while (Pos < Out.size()) {
    size_t Nl = Out.find('\n', Pos);
    if (Nl == std::string::npos)
      break;
    Lines.push_back(Out.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  ASSERT_EQ(Lines.size(), 2u) << Out;
  Json First = parseOrFail(Lines[0]);
  EXPECT_EQ(First.find("level")->asString(), "info");
  EXPECT_EQ(First.find("component")->asString(), "cli");
  EXPECT_EQ(First.find("msg")->asString(), "start");
  EXPECT_EQ(First.find("model")->asString(), "pso");
  Json Second = parseOrFail(Lines[1]);
  EXPECT_EQ(Second.find("level")->asString(), "error");
  EXPECT_EQ(Second.find("exec")->asString(), "12");
}

TEST(LogTest, OffSuppressesEverythingAndNamesParse) {
  std::string Out = captureFile([](FILE *F) {
    Logger L(LogLevel::Off, false, F);
    L.error("synth", "even errors");
  });
  EXPECT_TRUE(Out.empty());
  EXPECT_EQ(logLevelByName("debug"), LogLevel::Debug);
  EXPECT_EQ(logLevelByName("warn"), LogLevel::Warn);
  EXPECT_EQ(logLevelByName("off"), LogLevel::Off);
  EXPECT_FALSE(logLevelByName("verbose").has_value());
}

TEST(ProfilerTest, PhaseNamesAreStable) {
  // Dashboard series names hang off these; renames are breaking.
  EXPECT_STREQ(phaseName(Phase::ViewRefresh), "view_refresh");
  EXPECT_STREQ(phaseName(Phase::SchedPick), "sched_pick");
  EXPECT_STREQ(phaseName(Phase::OpDispatch), "op_dispatch");
  EXPECT_STREQ(phaseName(Phase::BufferFlush), "buffer_flush");
  EXPECT_STREQ(phaseName(Phase::SpecCheck), "spec_check");
  EXPECT_STREQ(phaseName(Phase::SatSolve), "sat_solve");
  EXPECT_STREQ(phaseName(Phase::Enforce), "enforce");
  EXPECT_STREQ(phaseName(Phase::Fold), "fold");
  EXPECT_STREQ(phaseName(Phase::ExecOther), "exec_other");
  EXPECT_STREQ(phaseName(Phase::RoundOther), "round_other");
}

TEST(ProfilerTest, FlushExecAttributesRemainderAndCountsOps) {
  Registry Reg;
  Profiler P(Reg, {"const", "load"});
  ProfilerShard &S = P.shard(0);
  S.addNs(Phase::ViewRefresh, 1000);
  S.addNs(Phase::OpDispatch, 2000);
  S.OpSteps[0] = 5;
  S.OpSteps[1] = 7;
  P.flushExec(S, /*ExecWallNs=*/10000, /*Worker=*/0);

  // The in-loop phases land in their histograms in microseconds; the
  // unattributed remainder (10000 - 3000 ns) goes to exec_other, so the
  // per-execution attribution is total by construction.
  EXPECT_EQ(Reg.histogram("obs_phase_view_refresh_us").count(), 1u);
  EXPECT_DOUBLE_EQ(Reg.histogram("obs_phase_view_refresh_us").sum(), 1.0);
  EXPECT_DOUBLE_EQ(Reg.histogram("obs_phase_op_dispatch_us").sum(), 2.0);
  EXPECT_DOUBLE_EQ(Reg.histogram("obs_phase_exec_other_us").sum(), 7.0);
  EXPECT_EQ(P.totalNs(), 10000u);

  EXPECT_EQ(Reg.counter("obs_op_const_steps_total").value(), 5u);
  EXPECT_EQ(Reg.counter("obs_op_load_steps_total").value(), 7u);
  EXPECT_EQ(Reg.counter("obs_execs_profiled_total").value(), 1u);

  // The shard is reset for the next execution.
  EXPECT_EQ(S.PhaseNs[0], 0u);
  EXPECT_EQ(S.OpSteps[0], 0u);
}

TEST(ProfilerTest, ObservePhaseFeedsHistogramAndWatermark) {
  Registry Reg;
  Profiler P(Reg, {"nop"});
  uint64_t Before = P.totalNs();
  P.observePhaseNs(Phase::SatSolve, 2500);
  P.observePhaseNs(Phase::RoundOther, 500);
  EXPECT_EQ(Reg.histogram("obs_phase_sat_solve_us").count(), 1u);
  EXPECT_DOUBLE_EQ(Reg.histogram("obs_phase_sat_solve_us").sum(), 2.5);
  EXPECT_EQ(P.totalNs() - Before, 3000u);
}

TEST(ConvergenceTest, RoundRecordJsonShapeIsPinned) {
  RoundRecord R;
  R.Round = 3;
  R.Executions = 150;
  R.Violations = 4;
  R.NewPredicates = 2;
  R.DistinctPredicates = 11;
  R.FencesEnforced = 5;
  R.CleanStreak = 0;
  R.Truncated = false;
  R.CheckCacheHits = 10;
  R.CheckCacheMisses = 140;
  R.ExecCacheHits = 20;
  R.ExecCacheMisses = 130;
  R.SatClauses = 4;
  R.SatModels = 2;
  R.SatConflicts = 1;
  R.SatDecisions = 9;
  R.SatPropagations = 33;
  R.SatSolveUs = 120;
  R.RoundWallUs = 4500;
  EXPECT_EQ(
      roundRecordJson(R).dump(),
      "{\"round\":3,\"executions\":150,\"violations\":4,"
      "\"newPredicates\":2,\"distinctPredicates\":11,\"fences\":5,"
      "\"cleanStreak\":0,\"truncated\":false,"
      "\"cache\":{\"checkHits\":10,\"checkMisses\":140,"
      "\"execHits\":20,\"execMisses\":130},"
      "\"sat\":{\"clauses\":4,\"models\":2,\"conflicts\":1,"
      "\"decisions\":9,\"propagations\":33,\"solveUs\":120},"
      "\"roundWallUs\":4500}");
}

TEST(ConvergenceTest, RoundLogWriterEmitsOneParseableLinePerRound) {
  std::ostringstream OS;
  RoundLogWriter W(OS);
  for (unsigned I = 1; I <= 3; ++I) {
    RoundRecord R;
    R.Round = I;
    R.Executions = 100 * I;
    W.write(R);
  }
  std::istringstream In(OS.str());
  std::string Line;
  unsigned Round = 0;
  while (std::getline(In, Line)) {
    ++Round;
    Json J = parseOrFail(Line);
    EXPECT_EQ(J.find("round")->asU64(), Round);
    EXPECT_EQ(J.find("executions")->asU64(), 100u * Round);
  }
  EXPECT_EQ(Round, 3u);
}

TEST(SolveStatsTest, MinimumModelFillsStats) {
  sat::MonotoneCnf F;
  F.NumVars = 4;
  F.Clauses = {{0, 1}, {1, 2}, {2, 3}};
  bool Unsat = false;
  sat::SolveStats SS;
  std::vector<sat::Var> Model = sat::minimumModel(F, Unsat, &SS);
  EXPECT_FALSE(Unsat);
  EXPECT_FALSE(Model.empty());
  EXPECT_EQ(SS.Vars, 4u);
  EXPECT_EQ(SS.Clauses, 3u);
  EXPECT_GE(SS.Models, 1u);
  // A null stats pointer keeps working (the default call shape).
  std::vector<sat::Var> Same = sat::minimumModel(F, Unsat);
  EXPECT_EQ(Model, Same);
}

TEST(SolveStatsTest, UnsatStillReportsShape) {
  sat::MonotoneCnf F;
  F.NumVars = 2;
  F.Clauses = {{}}; // The empty clause: unsatisfiable.
  bool Unsat = false;
  sat::SolveStats SS;
  sat::minimumModel(F, Unsat, &SS);
  EXPECT_TRUE(Unsat);
  EXPECT_EQ(SS.Vars, 2u);
  EXPECT_EQ(SS.Clauses, 1u);
  EXPECT_EQ(SS.Models, 0u);
}

TEST(ReproBundleTest, MetricsSnapshotRoundTrips) {
  Registry R;
  R.counter("synth_executions_total").add(300);
  R.counter("synth_violations_total").add(18);

  harness::ReproBundle B;
  B.ModuleText = "";
  B.Metrics = R.countersJson();

  std::string Dumped = B.toJson().dump(2);
  Json Parsed = parseOrFail(Dumped);
  std::string Error;
  std::optional<harness::ReproBundle> Back =
      harness::ReproBundle::fromJson(Parsed, Error);
  ASSERT_TRUE(Back.has_value()) << Error;
  EXPECT_EQ(Back->Metrics.dump(), B.Metrics.dump());
  const Json *Counters = Back->Metrics.find("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_EQ(Counters->find("synth_executions_total")->asU64(), 300u);
}

TEST(ReproBundleTest, MetricsFieldIsOptional) {
  // Bundles written before the metrics snapshot existed (or with
  // observability off) must load and re-save without a metrics key.
  harness::ReproBundle B;
  B.ModuleText = "";
  std::string Dumped = B.toJson().dump();
  EXPECT_EQ(Dumped.find("\"metrics\""), std::string::npos);
  Json Parsed = parseOrFail(Dumped);
  std::string Error;
  std::optional<harness::ReproBundle> Back =
      harness::ReproBundle::fromJson(Parsed, Error);
  ASSERT_TRUE(Back.has_value()) << Error;
  EXPECT_TRUE(Back->Metrics.isNull());
}
