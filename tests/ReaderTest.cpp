//===- ReaderTest.cpp - Printer/Reader round-trips ------------------------===//
//
// The textual IR form must round-trip: print(parse(print(M))) ==
// print(M), and parsed modules must behave identically. Exercised on
// hand-written snippets and on every Table-2 benchmark (including their
// fenced versions after synthesis).
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "ir/Printer.h"
#include "ir/Reader.h"
#include "ir/Verifier.h"
#include "programs/Benchmark.h"
#include "synth/FenceEnforcer.h"
#include "vm/Interp.h"

#include <gtest/gtest.h>

using namespace dfence;
using namespace dfence::ir;

namespace {

Module roundTrip(const Module &M) {
  std::string Text = printModule(M);
  std::string Error;
  auto Parsed = parseModule(Text, Error);
  EXPECT_TRUE(Parsed.has_value()) << Error << "\n" << Text;
  if (!Parsed)
    return Module();
  EXPECT_EQ(printModule(*Parsed), Text) << "round-trip not stable";
  return std::move(*Parsed);
}

} // namespace

TEST(ReaderTest, SimpleFunctionRoundTrip) {
  Module M = frontend::compileOrDie(R"(
global int G = 7;
int f(int a) {
  int x = a * 2;
  G = x;
  return G + 1;
}
)");
  Module P = roundTrip(M);
  EXPECT_EQ(vm::runSequential(P, "f", {5}), 11u);
}

TEST(ReaderTest, ControlFlowRoundTrip) {
  Module M = frontend::compileOrDie(R"(
int collatzSteps(int n) {
  int steps = 0;
  while (n != 1) {
    if (n % 2 == 0) {
      n = n / 2;
    } else {
      n = 3 * n + 1;
    }
    steps = steps + 1;
  }
  return steps;
}
)");
  Module P = roundTrip(M);
  EXPECT_EQ(vm::runSequential(P, "collatzSteps", {6}), 8u);
  EXPECT_EQ(vm::runSequential(P, "collatzSteps", {1}), 0u);
}

TEST(ReaderTest, ConcurrencyOpsRoundTrip) {
  Module M = frontend::compileOrDie(R"(
global int L = 0;
global int X = 0;
int f() {
  lock(&L);
  X = 1;
  unlock(&L);
  fence();
  fence_ss();
  fence_sl();
  int ok = cas(&X, 1, 2);
  int t = spawn(g, 5);
  join(t);
  int me = self();
  int p = malloc(3);
  free(p);
  assert(ok);
  return X;
}
int g(int v) { return v; }
)");
  Module P = roundTrip(M);
  EXPECT_EQ(vm::runSequential(P, "f", {}), 2u);
}

TEST(ReaderTest, GlobalInitializersPreserved) {
  Module M = frontend::compileOrDie(R"(
global int A = 5;
global int B[3] = 2;
int f() { return A + B[0] + B[2]; }
)");
  Module P = roundTrip(M);
  EXPECT_EQ(vm::runSequential(P, "f", {}), 9u);
}

TEST(ReaderTest, SynthesizedFencesSurviveRoundTrip) {
  Module M = frontend::compileOrDie(R"(
global int X = 0;
global int Y = 0;
int w() {
  X = 1;
  Y = 2;
  return 0;
}
)");
  InstrId First = InvalidInstrId;
  for (const Instr &I : M.Funcs[0].Body)
    if (I.Op == Opcode::Store) {
      First = I.Id;
      break;
    }
  synth::enforcePredicates(M, {{First, First, false}},
                           synth::EnforceMode::Fence);
  Module P = roundTrip(M);
  EXPECT_EQ(synth::collectSynthesizedFences(P).size(), 1u);
}

TEST(ReaderTest, FreshLabelsAfterParsing) {
  Module M = frontend::compileOrDie("int f() { return 1; }");
  Module P = roundTrip(M);
  InstrId MaxId = 0;
  for (const Instr &I : P.Funcs[0].Body)
    MaxId = std::max(MaxId, I.Id);
  EXPECT_GT(P.nextInstrId(), MaxId)
      << "parsed modules must not recycle labels";
}

TEST(ReaderTest, RejectsMalformedInput) {
  std::string Error;
  EXPECT_FALSE(parseModule("gibberish\n", Error).has_value());
  EXPECT_FALSE(parseModule("%1: nop\n", Error).has_value())
      << "instruction outside a function";
  EXPECT_FALSE(
      parseModule("func f(0 params, 0 regs) {\n", Error).has_value())
      << "unterminated function";
  EXPECT_FALSE(parseModule("func f(0 params, 0 regs) {\n"
                           "  %1: r0 = load [r1]\n"
                           "}\n",
                           Error)
                   .has_value())
      << "verifier must reject out-of-range registers";
}

TEST(ReaderTest, AllBenchmarksRoundTrip) {
  for (const programs::Benchmark &B : programs::allBenchmarks()) {
    auto CR = frontend::compileMiniC(B.Source);
    ASSERT_TRUE(CR.Ok) << B.Name;
    Module P = roundTrip(CR.Module);
    EXPECT_TRUE(verifyModule(P).empty()) << B.Name;
    EXPECT_EQ(P.totalInstrCount(), CR.Module.totalInstrCount())
        << B.Name;
  }
}
