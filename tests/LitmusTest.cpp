//===- LitmusTest.cpp - Classic litmus tests against Semantics 1 ----------===//
//
// Validates the operational TSO/PSO semantics on the standard litmus
// shapes: store buffering (SB), message passing (MP), store-to-load
// forwarding, fence effects, and the CAS-drains-buffer rules. Each test
// sweeps many seeds under the flush-delaying scheduler and checks which
// outcomes are observable under which model.
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "vm/Interp.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

using namespace dfence;
using namespace dfence::vm;

namespace {

/// Runs a two-thread client (one call per thread) across seeds and
/// returns the set of (ret0, ret1) pairs observed.
std::set<std::pair<Word, Word>>
observeOutcomes(const std::string &Src, const char *F0, const char *F1,
                MemModel Model, int Seeds = 300, double FlushProb = 0.3) {
  auto M = frontend::compileOrDie(Src);
  Client C;
  ThreadScript S0, S1;
  MethodCall M0;
  M0.Func = F0;
  MethodCall M1;
  M1.Func = F1;
  S0.Calls = {M0};
  S1.Calls = {M1};
  C.Threads = {S0, S1};

  std::set<std::pair<Word, Word>> Outcomes;
  for (int Seed = 1; Seed <= Seeds; ++Seed) {
    ExecConfig Cfg;
    Cfg.Model = Model;
    Cfg.Seed = static_cast<uint64_t>(Seed);
    Cfg.FlushProb = FlushProb;
    ExecResult R = runExecution(M, C, Cfg);
    EXPECT_EQ(R.Out, Outcome::Completed) << R.Message;
    // History ops are in invocation order; map back to thread indices.
    Word Rets[2] = {0, 0};
    for (const OpRecord &Op : R.Hist.Ops)
      Rets[Op.Thread] = Op.Ret;
    Outcomes.insert({Rets[0], Rets[1]});
  }
  return Outcomes;
}

// SB: both threads store then load the other variable.
const char *SbSrc = R"(
global int X = 0;
global int Y = 0;
int t1() { X = 1; return Y; }
int t2() { Y = 1; return X; }
)";

// SB with a store-load fence between store and load.
const char *SbFencedSrc = R"(
global int X = 0;
global int Y = 0;
int t1() { X = 1; fence_sl(); return Y; }
int t2() { Y = 1; fence_sl(); return X; }
)";

// SB with a CAS to an unrelated variable between store and load.
const char *SbCasSrc = R"(
global int X = 0;
global int Y = 0;
global int D = 0;
int t1() { X = 1; cas(&D, 0, 1); return Y; }
int t2() { Y = 1; cas(&D, 0, 1); return X; }
)";

// MP: writer publishes data then flag; reader checks flag then data.
// Reader returns flag*2 + data.
const char *MpSrc = R"(
global int DATA = 0;
global int FLAG = 0;
int writer() { DATA = 1; FLAG = 1; return 0; }
int reader() {
  int f = FLAG;
  int d = DATA;
  return f * 2 + d;
}
)";

// MP with a store-store fence in the writer.
const char *MpFencedSrc = R"(
global int DATA = 0;
global int FLAG = 0;
int writer() { DATA = 1; fence_ss(); FLAG = 1; return 0; }
int reader() {
  int f = FLAG;
  int d = DATA;
  return f * 2 + d;
}
)";

} // namespace

TEST(LitmusTest, SbForbiddenUnderSC) {
  auto O = observeOutcomes(SbSrc, "t1", "t2", MemModel::SC);
  EXPECT_FALSE(O.count({0, 0})) << "SC forbids r1=r2=0";
  EXPECT_TRUE(O.size() >= 2) << "interleavings should vary";
}

TEST(LitmusTest, SbObservableUnderTSO) {
  auto O = observeOutcomes(SbSrc, "t1", "t2", MemModel::TSO, 300, 0.1);
  EXPECT_TRUE(O.count({0, 0})) << "TSO store buffering must show (0,0)";
}

TEST(LitmusTest, SbObservableUnderPSO) {
  auto O = observeOutcomes(SbSrc, "t1", "t2", MemModel::PSO, 300, 0.3);
  EXPECT_TRUE(O.count({0, 0}));
}

TEST(LitmusTest, StoreLoadFenceRestoresSbUnderTSO) {
  auto O = observeOutcomes(SbFencedSrc, "t1", "t2", MemModel::TSO, 300,
                           0.1);
  EXPECT_FALSE(O.count({0, 0})) << "fence must forbid (0,0)";
}

TEST(LitmusTest, StoreLoadFenceRestoresSbUnderPSO) {
  auto O = observeOutcomes(SbFencedSrc, "t1", "t2", MemModel::PSO, 300,
                           0.3);
  EXPECT_FALSE(O.count({0, 0}));
}

TEST(LitmusTest, CasActsAsFenceOnTSO) {
  auto O = observeOutcomes(SbCasSrc, "t1", "t2", MemModel::TSO, 300, 0.1);
  EXPECT_FALSE(O.count({0, 0}))
      << "TSO CAS requires the whole buffer to drain";
}

TEST(LitmusTest, CasDoesNotFenceOtherVariablesOnPSO) {
  auto O = observeOutcomes(SbCasSrc, "t1", "t2", MemModel::PSO, 500, 0.2);
  EXPECT_TRUE(O.count({0, 0}))
      << "PSO CAS only drains the buffer of its own variable";
}

TEST(LitmusTest, MpIntactUnderTSO) {
  // flag=1,data=0 (reader returns 2) requires store-store reordering.
  auto O = observeOutcomes(MpSrc, "writer", "reader", MemModel::TSO, 300,
                           0.1);
  EXPECT_FALSE(O.count({0, 2})) << "TSO preserves store order";
}

TEST(LitmusTest, MpBrokenUnderPSO) {
  auto O = observeOutcomes(MpSrc, "writer", "reader", MemModel::PSO, 500,
                           0.3);
  EXPECT_TRUE(O.count({0, 2})) << "PSO reorders the two stores";
}

TEST(LitmusTest, StoreStoreFenceRestoresMpUnderPSO) {
  auto O = observeOutcomes(MpFencedSrc, "writer", "reader", MemModel::PSO,
                           500, 0.3);
  EXPECT_FALSE(O.count({0, 2}));
}

TEST(LitmusTest, StoreToLoadForwarding) {
  // A thread always sees its own buffered stores.
  const char *Src = R"(
global int X = 0;
int t1() { X = 7; return X; }
int t2() { return X; }
)";
  for (MemModel Model : {MemModel::TSO, MemModel::PSO}) {
    auto O = observeOutcomes(Src, "t1", "t2", Model, 200, 0.1);
    for (const auto &[R1, R2] : O)
      EXPECT_EQ(R1, 7u) << "forwarding must return the buffered value";
  }
}

TEST(LitmusTest, FlushProbabilityOneBehavesLikeSC) {
  auto O = observeOutcomes(SbSrc, "t1", "t2", MemModel::PSO, 300, 1.0);
  EXPECT_FALSE(O.count({0, 0}))
      << "with certain flushing a thread's loads follow its own stores";
}

TEST(LitmusTest, LockedIncrementsAreNotLost) {
  const char *Src = R"(
global int L = 0;
global int G = 0;
int bump2() {
  lock(&L);
  int v = G;
  G = v + 1;
  unlock(&L);
  lock(&L);
  int w = G;
  G = w + 1;
  unlock(&L);
  return 0;
}
int readG() {
  return G;
}
)";
  auto M = frontend::compileOrDie(Src);
  for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
    Client C;
    ThreadScript S0, S1, S2;
    MethodCall B;
    B.Func = "bump2";
    S0.Calls = {B};
    S1.Calls = {B};
    MethodCall RG;
    RG.Func = "readG";
    S2.Calls = {RG};
    C.Threads = {S0, S1, S2};
    ExecConfig Cfg;
    Cfg.Model = MemModel::PSO;
    Cfg.Seed = Seed;
    Cfg.FlushProb = 0.3;
    ExecResult R = runExecution(M, C, Cfg);
    ASSERT_EQ(R.Out, Outcome::Completed) << R.Message;
    // The observer may read any prefix count, but a fully-ordered final
    // read (observer last) must see 4. We instead check monotonicity:
    // the observed value never exceeds 4.
    EXPECT_LE(R.Hist.Ops[2].Ret, 4u);
  }
}

TEST(LitmusTest, JoinWaitsForBufferDrain) {
  const char *Src = R"(
global int X = 0;
int child() { X = 9; return 0; }
int parent() {
  int t = spawn(child);
  join(t);
  return X;
}
)";
  auto M = frontend::compileOrDie(Src);
  Client C;
  ThreadScript S;
  MethodCall P;
  P.Func = "parent";
  S.Calls = {P};
  C.Threads = {S};
  for (uint64_t Seed = 1; Seed <= 100; ++Seed) {
    ExecConfig Cfg;
    Cfg.Model = MemModel::PSO;
    Cfg.Seed = Seed;
    Cfg.FlushProb = 0.2;
    ExecResult R = runExecution(M, C, Cfg);
    ASSERT_EQ(R.Out, Outcome::Completed) << R.Message;
    EXPECT_EQ(R.Hist.Ops[0].Ret, 9u)
        << "JOIN rule requires the child's buffers to be drained";
  }
}
