//===- EnforcerTest.cpp - Fence insertion and merge pass ------------------===//

#include "frontend/Compiler.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "synth/FenceEnforcer.h"
#include "vm/Interp.h"

#include <gtest/gtest.h>

using namespace dfence;
using namespace dfence::synth;
using namespace dfence::ir;

namespace {

/// Finds the label of the Nth store in function \p Name.
InstrId nthStore(const Module &M, const std::string &Name, unsigned N) {
  auto F = M.findFunction(Name);
  EXPECT_TRUE(F.has_value());
  unsigned Seen = 0;
  for (const Instr &I : M.function(*F).Body)
    if (I.Op == Opcode::Store && Seen++ == N)
      return I.Id;
  ADD_FAILURE() << "store " << N << " not found in " << Name;
  return InvalidInstrId;
}

const char *MpSrc = R"(
global int DATA = 0;
global int FLAG = 0;
int writer() {
  DATA = 1;
  FLAG = 1;
  return 0;
}
)";

} // namespace

TEST(EnforcerTest, InsertsFenceAfterLabel) {
  Module M = frontend::compileOrDie(MpSrc);
  InstrId DataStore = nthStore(M, "writer", 0);
  vm::OrderingPredicate P{DataStore, nthStore(M, "writer", 1), false};
  auto Inserted = enforcePredicates(M, {P}, EnforceMode::Fence);
  ASSERT_EQ(Inserted.size(), 1u);
  EXPECT_EQ(Inserted[0].Kind, FenceKind::StoreStore);
  EXPECT_EQ(Inserted[0].Function, "writer");
  const Function &F = M.function(*M.findFunction("writer"));
  size_t Pos = F.indexOf(DataStore);
  ASSERT_LT(Pos + 1, F.Body.size());
  EXPECT_EQ(F.Body[Pos + 1].Op, Opcode::Fence);
  EXPECT_TRUE(F.Body[Pos + 1].Synthesized);
  EXPECT_TRUE(verifyModule(M).empty());
}

TEST(EnforcerTest, StoreLoadKindForLoadPredicates) {
  Module M = frontend::compileOrDie(MpSrc);
  InstrId DataStore = nthStore(M, "writer", 0);
  vm::OrderingPredicate P{DataStore, nthStore(M, "writer", 1), true};
  auto Inserted = enforcePredicates(M, {P}, EnforceMode::Fence);
  ASSERT_EQ(Inserted.size(), 1u);
  EXPECT_EQ(Inserted[0].Kind, FenceKind::StoreLoad);
}

TEST(EnforcerTest, DuplicatePredicatesEnforceOnce) {
  Module M = frontend::compileOrDie(MpSrc);
  InstrId DataStore = nthStore(M, "writer", 0);
  InstrId FlagStore = nthStore(M, "writer", 1);
  vm::OrderingPredicate P1{DataStore, FlagStore, false};
  vm::OrderingPredicate P2{DataStore, FlagStore, true};
  auto First = enforcePredicates(M, {P1}, EnforceMode::Fence);
  auto Second = enforcePredicates(M, {P2}, EnforceMode::Fence);
  EXPECT_EQ(First.size(), 1u);
  EXPECT_EQ(Second.size(), 0u) << "existing fence is reused";
  // The reused fence widens to a full fence when kinds differ.
  const Function &F = M.function(*M.findFunction("writer"));
  size_t Pos = F.indexOf(DataStore);
  EXPECT_EQ(F.Body[Pos + 1].FK, FenceKind::Full);
}

TEST(EnforcerTest, CasDummyEnforcement) {
  Module M = frontend::compileOrDie(MpSrc);
  InstrId DataStore = nthStore(M, "writer", 0);
  vm::OrderingPredicate P{DataStore, nthStore(M, "writer", 1), false};
  auto Inserted = enforcePredicates(M, {P}, EnforceMode::CasDummy);
  ASSERT_EQ(Inserted.size(), 1u);
  EXPECT_TRUE(M.findGlobal("__dfence_dummy").has_value());
  const Function &F = M.function(*M.findFunction("writer"));
  size_t Pos = F.indexOf(DataStore);
  EXPECT_EQ(F.Body[Pos + 1].Op, Opcode::GlobalAddr);
  EXPECT_EQ(F.Body[Pos + 2].Op, Opcode::Cas);
  EXPECT_TRUE(verifyModule(M).empty());
  // The instrumented program still runs.
  EXPECT_EQ(vm::runSequential(M, "writer", {}), 0u);
}

TEST(EnforcerTest, MergeRemovesBackToBackFences) {
  Module M = frontend::compileOrDie(MpSrc);
  InstrId DataStore = nthStore(M, "writer", 0);
  // Insert two synthesized fences right after the same store.
  vm::OrderingPredicate P{DataStore, nthStore(M, "writer", 1), false};
  enforcePredicates(M, {P}, EnforceMode::Fence);
  Function &F = M.function(*M.findFunction("writer"));
  Instr Extra;
  Extra.Op = Opcode::Fence;
  Extra.FK = FenceKind::StoreStore;
  Extra.Id = M.nextInstrId();
  Extra.Synthesized = true;
  F.insertAfter(F.Body[F.indexOf(DataStore) + 1].Id, Extra);
  EXPECT_EQ(F.countSynthesizedFences(), 2u);
  unsigned Removed = mergeRedundantFences(M);
  EXPECT_EQ(Removed, 1u);
  EXPECT_EQ(F.countSynthesizedFences(), 1u);
  EXPECT_TRUE(verifyModule(M).empty());
}

TEST(EnforcerTest, MergeKeepsFenceAfterInterveningStore) {
  Module M = frontend::compileOrDie(MpSrc);
  InstrId DataStore = nthStore(M, "writer", 0);
  InstrId FlagStore = nthStore(M, "writer", 1);
  vm::OrderingPredicate P1{DataStore, FlagStore, false};
  vm::OrderingPredicate P2{FlagStore, FlagStore, false};
  enforcePredicates(M, {P1}, EnforceMode::Fence);
  enforcePredicates(M, {P2}, EnforceMode::Fence);
  Function &F = M.function(*M.findFunction("writer"));
  EXPECT_EQ(F.countSynthesizedFences(), 2u);
  unsigned Removed = mergeRedundantFences(M);
  EXPECT_EQ(Removed, 0u)
      << "a store between the fences blocks the merge";
}

TEST(EnforcerTest, MergeNeverRemovesUserFences) {
  Module M = frontend::compileOrDie(R"(
global int X = 0;
int f() {
  X = 1;
  fence();
  fence();
  return 0;
}
)");
  unsigned Removed = mergeRedundantFences(M);
  EXPECT_EQ(Removed, 0u) << "only synthesized fences are merged";
}

TEST(EnforcerTest, CollectSynthesizedFencesReportsLines) {
  Module M = frontend::compileOrDie(MpSrc);
  InstrId DataStore = nthStore(M, "writer", 0);
  vm::OrderingPredicate P{DataStore, nthStore(M, "writer", 1), false};
  enforcePredicates(M, {P}, EnforceMode::Fence);
  auto Fences = collectSynthesizedFences(M);
  ASSERT_EQ(Fences.size(), 1u);
  EXPECT_EQ(Fences[0].Function, "writer");
  // The raw-string source starts with a newline: DATA=1 is on line 5.
  EXPECT_EQ(Fences[0].LineBefore, 5u) << "DATA = 1; is on line 5";
  EXPECT_EQ(Fences[0].LineAfter, 6u) << "FLAG = 1; is on line 6";
  EXPECT_NE(Fences[0].str().find("(writer, 5:6)"), std::string::npos);
}

TEST(EnforcerTest, AtomicSectionWrapsRegion) {
  Module M = frontend::compileOrDie(MpSrc);
  InstrId DataStore = nthStore(M, "writer", 0);
  InstrId FlagStore = nthStore(M, "writer", 1);
  vm::OrderingPredicate P{DataStore, FlagStore, false};
  auto Inserted =
      enforcePredicates(M, {P}, EnforceMode::AtomicSection);
  ASSERT_EQ(Inserted.size(), 1u);
  EXPECT_TRUE(M.findGlobal("__dfence_lock").has_value());
  const Function &F = M.function(*M.findFunction("writer"));
  size_t LPos = F.indexOf(DataStore);
  size_t KPos = F.indexOf(FlagStore);
  EXPECT_EQ(F.Body[LPos - 1].Op, Opcode::Lock);
  EXPECT_TRUE(F.Body[LPos - 1].Synthesized);
  EXPECT_EQ(F.Body[KPos + 2].Op, Opcode::Unlock);
  EXPECT_TRUE(verifyModule(M).empty());
  // The wrapped program still runs (lock acquired and released).
  EXPECT_EQ(vm::runSequential(M, "writer", {}), 0u);
}

TEST(EnforcerTest, AtomicSectionIdempotent) {
  Module M = frontend::compileOrDie(MpSrc);
  InstrId DataStore = nthStore(M, "writer", 0);
  InstrId FlagStore = nthStore(M, "writer", 1);
  vm::OrderingPredicate P{DataStore, FlagStore, false};
  enforcePredicates(M, {P}, EnforceMode::AtomicSection);
  auto Second = enforcePredicates(M, {P}, EnforceMode::AtomicSection);
  EXPECT_TRUE(Second.empty()) << "re-wrapping would self-deadlock";
  EXPECT_EQ(vm::runSequential(M, "writer", {}), 0u);
}

TEST(EnforcerTest, AtomicSectionFallsBackToFenceAcrossBranches) {
  // l and k separated by control flow: must fall back to a fence.
  Module M = frontend::compileOrDie(R"(
global int X = 0;
global int Y = 0;
int f(int c) {
  X = 1;
  if (c) {
    Y = 2;
  }
  Y = 3;
  return 0;
}
)");
  InstrId XStore = nthStore(M, "f", 0);
  InstrId LastYStore = nthStore(M, "f", 2);
  vm::OrderingPredicate P{XStore, LastYStore, false};
  enforcePredicates(M, {P}, EnforceMode::AtomicSection);
  const Function &F = M.function(*M.findFunction("f"));
  size_t Pos = F.indexOf(XStore);
  EXPECT_EQ(F.Body[Pos + 1].Op, Opcode::Fence)
      << "branchy regions are enforced with a fence";
  EXPECT_TRUE(verifyModule(M).empty());
  EXPECT_EQ(vm::runSequential(M, "f", {1}), 0u);
}

TEST(EnforcerTest, AtomicSectionEnforcesOrderUnderPSO) {
  // SB shape where both racing regions get wrapped: mutual exclusion plus
  // the unlock drain forbids the (0,0) outcome.
  const char *Src = R"(
global int X = 0;
global int Y = 0;
int t1() { X = 1; int r = Y; return r; }
int t2() { Y = 1; int r = X; return r; }
)";
  Module M = frontend::compileOrDie(Src);
  auto FindLoad = [&](const char *Fn) {
    for (const Instr &I : M.function(*M.findFunction(Fn)).Body)
      if (I.Op == Opcode::Load)
        return I.Id;
    return InvalidInstrId;
  };
  vm::OrderingPredicate P1{nthStore(M, "t1", 0), FindLoad("t1"), true};
  vm::OrderingPredicate P2{nthStore(M, "t2", 0), FindLoad("t2"), true};
  enforcePredicates(M, {P1, P2}, EnforceMode::AtomicSection);
  ASSERT_TRUE(verifyModule(M).empty());

  vm::Client C;
  vm::ThreadScript S1, S2;
  vm::MethodCall M1;
  M1.Func = "t1";
  vm::MethodCall M2;
  M2.Func = "t2";
  S1.Calls = {M1};
  S2.Calls = {M2};
  C.Threads = {S1, S2};
  for (uint64_t Seed = 1; Seed <= 500; ++Seed) {
    vm::ExecConfig Cfg;
    Cfg.Model = vm::MemModel::PSO;
    Cfg.Seed = Seed;
    Cfg.FlushProb = 0.1;
    vm::ExecResult R = vm::runExecution(M, C, Cfg);
    ASSERT_EQ(R.Out, vm::Outcome::Completed) << R.Message;
    vm::Word Rets[2] = {9, 9};
    for (const auto &Op : R.Hist.Ops)
      Rets[Op.Thread] = Op.Ret;
    EXPECT_FALSE(Rets[0] == 0 && Rets[1] == 0)
        << "atomic sections must forbid the SB relaxed outcome";
  }
}

TEST(EnforcerTest, FencedProgramStillBehaves) {
  Module M = frontend::compileOrDie(MpSrc);
  InstrId DataStore = nthStore(M, "writer", 0);
  vm::OrderingPredicate P{DataStore, nthStore(M, "writer", 1), false};
  enforcePredicates(M, {P}, EnforceMode::Fence);
  EXPECT_EQ(vm::runSequential(M, "writer", {}), 0u);
}
