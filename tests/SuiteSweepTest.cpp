//===- SuiteSweepTest.cpp - Whole-suite synthesis invariants --------------===//
//
// Runs fence synthesis for every benchmark under both relaxed models
// (strictest applicable specification) and asserts the paper's structural
// invariants hold on the measured data:
//
//   * every run converges (no benchmark is unfixable by fences),
//   * PSO never needs fewer fences than TSO,
//   * the repaired program passes an independently-seeded verification
//     round,
//   * fully-locked algorithms need no fences anywhere.
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "programs/Benchmark.h"
#include "synth/Synthesizer.h"

#include <gtest/gtest.h>

using namespace dfence;
using namespace dfence::programs;
using namespace dfence::synth;
using vm::MemModel;

namespace {

SpecKind strictestSpec(const Benchmark &B) {
  if (B.UseNoGarbage)
    return SpecKind::NoGarbage;
  return B.Factory ? SpecKind::Linearizability : SpecKind::MemorySafety;
}

SynthConfig sweepConfig(const Benchmark &B, MemModel Model) {
  SynthConfig Cfg;
  Cfg.Model = Model;
  Cfg.Spec = strictestSpec(B);
  Cfg.Factory = B.Factory;
  Cfg.ExecsPerRound = 400;
  Cfg.MaxRounds = 16;
  Cfg.MaxRepairRounds = 16;
  Cfg.MaxStepsPerExec = 30000;
  Cfg.CleanRoundsRequired = 2;
  Cfg.FlushProb = Model == MemModel::TSO ? 0.1 : 0.5;
  if (Model == MemModel::PSO)
    Cfg.FlushProbs = {0.5, 0.1};
  return Cfg;
}

class SuiteSweepTest : public ::testing::TestWithParam<std::string> {};

} // namespace

TEST_P(SuiteSweepTest, ConvergesAndRespectsModelOrdering) {
  const Benchmark &B = benchmarkByName(GetParam());
  auto CR = frontend::compileMiniC(B.Source);
  ASSERT_TRUE(CR.Ok) << CR.Error;

  SynthResult Tso =
      synthesize(CR.Module, B.Clients, sweepConfig(B, MemModel::TSO));
  SynthResult Pso =
      synthesize(CR.Module, B.Clients, sweepConfig(B, MemModel::PSO));

  EXPECT_TRUE(Tso.Converged) << B.Name << " TSO: " << Tso.FirstViolation;
  EXPECT_TRUE(Pso.Converged) << B.Name << " PSO: " << Pso.FirstViolation;
  EXPECT_FALSE(Tso.CannotFix) << B.Name;
  EXPECT_FALSE(Pso.CannotFix) << B.Name;
  EXPECT_GE(Pso.Fences.size(), Tso.Fences.size())
      << B.Name << ": PSO relaxes strictly more than TSO\n"
      << "TSO: " << Tso.fenceSummary() << "\nPSO: "
      << Pso.fenceSummary();

  // Independent verification with fresh seeds on the PSO result.
  SynthConfig Verify = sweepConfig(B, MemModel::PSO);
  Verify.BaseSeed = 0xfeedbeef;
  Verify.MaxRounds = 1;
  Verify.MaxRepairRounds = 0;
  Verify.CleanRoundsRequired = 1;
  SynthResult Check =
      synthesize(Pso.FencedModule, B.Clients, Verify);
  EXPECT_EQ(Check.ViolatingExecutions, 0u)
      << B.Name << ": " << Check.FirstViolation;
}

TEST_P(SuiteSweepTest, SynthesisIsDeterministic) {
  const Benchmark &B = benchmarkByName(GetParam());
  auto CR = frontend::compileMiniC(B.Source);
  ASSERT_TRUE(CR.Ok);
  SynthConfig Cfg = sweepConfig(B, MemModel::PSO);
  Cfg.ExecsPerRound = 150; // Keep the double run cheap.
  SynthResult A = synthesize(CR.Module, B.Clients, Cfg);
  SynthResult B2 = synthesize(CR.Module, B.Clients, Cfg);
  EXPECT_EQ(A.fenceSummary(), B2.fenceSummary()) << B.Name;
  EXPECT_EQ(A.TotalExecutions, B2.TotalExecutions) << B.Name;
  EXPECT_EQ(A.ViolatingExecutions, B2.ViolatingExecutions) << B.Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteSweepTest,
    ::testing::ValuesIn([] {
      std::vector<std::string> Names;
      for (const Benchmark &B : allBenchmarks())
        Names.push_back(B.Name);
      return Names;
    }()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      std::string Name = Info.param;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(SuiteSweepTest, FullyLockedAlgorithmsNeedNoFences) {
  for (const char *Name : {"MS2 Queue", "LazyList Set"}) {
    const Benchmark &B = benchmarkByName(Name);
    auto CR = frontend::compileMiniC(B.Source);
    ASSERT_TRUE(CR.Ok);
    SynthConfig Cfg = sweepConfig(B, MemModel::TSO);
    SynthResult R = synthesize(CR.Module, B.Clients, Cfg);
    EXPECT_TRUE(R.Converged) << Name;
    EXPECT_EQ(R.Fences.size(), 0u)
        << Name << " on TSO: " << R.fenceSummary();
  }
}
