//===- SuiteSweepTest.cpp - Whole-suite synthesis invariants --------------===//
//
// Runs fence synthesis for every benchmark under both relaxed models
// (strictest applicable specification) and asserts the paper's structural
// invariants hold on the measured data:
//
//   * every run converges (no benchmark is unfixable by fences),
//   * PSO never needs fewer fences than TSO,
//   * the repaired program passes an independently-seeded verification
//     round,
//   * fully-locked algorithms need no fences anywhere.
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "programs/Benchmark.h"
#include "support/Rng.h"
#include "synth/Synthesizer.h"

#include <gtest/gtest.h>

using namespace dfence;
using namespace dfence::programs;
using namespace dfence::synth;
using vm::MemModel;

namespace {

SpecKind strictestSpec(const Benchmark &B) {
  if (B.UseNoGarbage)
    return SpecKind::NoGarbage;
  return B.Factory ? SpecKind::Linearizability : SpecKind::MemorySafety;
}

SynthConfig sweepConfig(const Benchmark &B, MemModel Model) {
  SynthConfig Cfg;
  Cfg.Model = Model;
  Cfg.Spec = strictestSpec(B);
  Cfg.Factory = B.Factory;
  Cfg.ExecsPerRound = 600;
  Cfg.MaxRounds = 16;
  Cfg.MaxRepairRounds = 16;
  Cfg.MaxStepsPerExec = 30000;
  Cfg.CleanRoundsRequired = 3;
  Cfg.FlushProb = Model == MemModel::TSO ? 0.1 : 0.5;
  if (Model == MemModel::PSO)
    Cfg.FlushProbs = {0.5, 0.1};
  // Per-subject seed streams (see DerivedSeedStreamIsPinned below);
  // every benchmark used to share the one default seed, so the whole
  // sweep explored a single schedule stream.
  Cfg.BaseSeed = deriveSeed(0x5eed, B.Name);
  return Cfg;
}

class SuiteSweepTest : public ::testing::TestWithParam<std::string> {};

} // namespace

TEST_P(SuiteSweepTest, ConvergesAndRespectsModelOrdering) {
  const Benchmark &B = benchmarkByName(GetParam());
  auto CR = frontend::compileMiniC(B.Source);
  ASSERT_TRUE(CR.Ok) << CR.Error;

  SynthResult Tso =
      synthesize(CR.Module, B.Clients, sweepConfig(B, MemModel::TSO));
  SynthResult Pso =
      synthesize(CR.Module, B.Clients, sweepConfig(B, MemModel::PSO));

  EXPECT_TRUE(Tso.Converged) << B.Name << " TSO: " << Tso.FirstViolation;
  EXPECT_TRUE(Pso.Converged) << B.Name << " PSO: " << Pso.FirstViolation;
  EXPECT_FALSE(Tso.CannotFix) << B.Name;
  EXPECT_FALSE(Pso.CannotFix) << B.Name;
  EXPECT_GE(Pso.Fences.size(), Tso.Fences.size())
      << B.Name << ": PSO relaxes strictly more than TSO\n"
      << "TSO: " << Tso.fenceSummary() << "\nPSO: "
      << Pso.fenceSummary();

  // Independent verification with fresh seeds on the PSO result.
  SynthConfig Verify = sweepConfig(B, MemModel::PSO);
  Verify.BaseSeed = deriveSeed(0xfeedbeef, B.Name);
  Verify.MaxRounds = 1;
  Verify.MaxRepairRounds = 0;
  Verify.CleanRoundsRequired = 1;
  SynthResult Check =
      synthesize(Pso.FencedModule, B.Clients, Verify);
  EXPECT_EQ(Check.ViolatingExecutions, 0u)
      << B.Name << ": " << Check.FirstViolation;
}

TEST_P(SuiteSweepTest, SynthesisIsDeterministic) {
  const Benchmark &B = benchmarkByName(GetParam());
  auto CR = frontend::compileMiniC(B.Source);
  ASSERT_TRUE(CR.Ok);
  SynthConfig Cfg = sweepConfig(B, MemModel::PSO);
  Cfg.ExecsPerRound = 150; // Keep the double run cheap.
  SynthResult A = synthesize(CR.Module, B.Clients, Cfg);
  SynthResult B2 = synthesize(CR.Module, B.Clients, Cfg);
  EXPECT_EQ(A.fenceSummary(), B2.fenceSummary()) << B.Name;
  EXPECT_EQ(A.TotalExecutions, B2.TotalExecutions) << B.Name;
  EXPECT_EQ(A.ViolatingExecutions, B2.ViolatingExecutions) << B.Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteSweepTest,
    ::testing::ValuesIn([] {
      std::vector<std::string> Names;
      for (const Benchmark &B : allBenchmarks())
        Names.push_back(B.Name);
      return Names;
    }()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      std::string Name = Info.param;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(SuiteSweepTest, DerivedSeedStreamIsPinned) {
  // Golden values for the per-subject seed derivation. Every sweep and
  // extended-suite expectation (fence shapes, convergence) was validated
  // against exactly these streams; if deriveSeed changes, these fail
  // first with a readable diff instead of a distant fence-shape assert.
  EXPECT_EQ(deriveSeed(0x5eed, "Peterson Lock"),
            0x16dc016d98ac9a81ULL);
  EXPECT_EQ(deriveSeed(0x5eed, "Treiber Stack"),
            0x4c973b9cb8cffdadULL);
  EXPECT_EQ(deriveSeed(0x5eed, "MS2 Queue"), 0x4dce01ee2bb206adULL);
  EXPECT_EQ(deriveSeed(0xfeedbeef, "Peterson Lock"),
            0xade541f27fa24abaULL);
  // Distinct subjects must get distinct streams from the same base.
  EXPECT_NE(deriveSeed(0x5eed, "Peterson Lock"),
            deriveSeed(0x5eed, "Treiber Stack"));
}

TEST(SuiteSweepTest, FullyLockedAlgorithmsNeedNoFences) {
  for (const char *Name : {"MS2 Queue", "LazyList Set"}) {
    const Benchmark &B = benchmarkByName(Name);
    auto CR = frontend::compileMiniC(B.Source);
    ASSERT_TRUE(CR.Ok);
    SynthConfig Cfg = sweepConfig(B, MemModel::TSO);
    SynthResult R = synthesize(CR.Module, B.Clients, Cfg);
    EXPECT_TRUE(R.Converged) << Name;
    EXPECT_EQ(R.Fences.size(), 0u)
        << Name << " on TSO: " << R.fenceSummary();
  }
}
