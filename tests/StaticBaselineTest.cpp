//===- StaticBaselineTest.cpp - Conservative static fence placement -------===//

#include "frontend/Compiler.h"
#include "ir/Verifier.h"
#include "programs/Benchmark.h"
#include "synth/StaticBaseline.h"
#include "synth/Synthesizer.h"
#include "vm/Interp.h"

#include <gtest/gtest.h>

using namespace dfence;
using namespace dfence::synth;
using vm::MemModel;

namespace {

unsigned fencesFor(const char *Src, MemModel Model) {
  auto M = frontend::compileOrDie(Src);
  StaticBaselineResult R = staticDelaySetFences(M, Model);
  EXPECT_TRUE(ir::verifyModule(R.FencedModule).empty());
  return R.FencesInserted;
}

} // namespace

TEST(StaticBaselineTest, ScNeedsNothing) {
  EXPECT_EQ(fencesFor("global int X = 0;\n"
                      "int f() { X = 1; return X; }",
                      MemModel::SC),
            0u);
}

TEST(StaticBaselineTest, StoreLoadPairFencedOnTso) {
  EXPECT_EQ(fencesFor("global int X = 0;\nglobal int Y = 0;\n"
                      "int f() { X = 1; return Y; }",
                      MemModel::TSO),
            1u);
}

TEST(StaticBaselineTest, LoadOnlyFunctionsNeedNothing) {
  EXPECT_EQ(fencesFor("global int X = 0;\n"
                      "int f() { int a = X; int b = X; return a + b; }",
                      MemModel::TSO),
            0u);
}

TEST(StaticBaselineTest, ExistingFenceSuppressesInsertion) {
  EXPECT_EQ(fencesFor("global int X = 0;\nglobal int Y = 0;\n"
                      "int f() { X = 1; fence(); return Y; }",
                      MemModel::TSO),
            0u)
      << "a fence right after the store kills the delay";
}

TEST(StaticBaselineTest, FenceLaterInPathAlsoSuppresses) {
  EXPECT_EQ(fencesFor("global int X = 0;\nglobal int Y = 0;\n"
                      "int f() { X = 1; int t = 0; fence(); "
                      "return Y; }",
                      MemModel::TSO),
            0u);
}

TEST(StaticBaselineTest, LockedRegionsNeedNothingOnTso) {
  // lock/unlock are fully fenced: a store inside a critical section with
  // the next load after the unlock is already ordered.
  EXPECT_EQ(fencesFor("global int L = 0;\nglobal int X = 0;\n"
                      "global int Y = 0;\n"
                      "int f() { lock(&L); X = 1; unlock(&L); "
                      "return Y; }",
                      MemModel::TSO),
            0u);
}

TEST(StaticBaselineTest, PsoFencesStoreStorePairs) {
  EXPECT_EQ(fencesFor("global int X = 0;\nglobal int Y = 0;\n"
                      "int f() { X = 1; Y = 2; return 0; }",
                      MemModel::PSO),
            2u)
      << "X=1 conflicts with Y=2; Y=2 reaches the return";
}

TEST(StaticBaselineTest, LoopBackEdgesCount) {
  // The store reaches a load around the loop back edge.
  EXPECT_EQ(fencesFor("global int X = 0;\nglobal int Y = 0;\n"
                      "int f(int n) {\n"
                      "  while (n > 0) {\n"
                      "    X = n;\n"
                      "    n = n - Y;\n"
                      "  }\n"
                      "  return 0;\n"
                      "}",
                      MemModel::TSO),
            1u);
}

TEST(StaticBaselineTest, StaticDominatesDynamicOnSuite) {
  // Static placement must fence at least everything dynamic synthesis
  // would (it is a sound over-approximation), measured by running a
  // verification round against each benchmark's strictest spec.
  for (const programs::Benchmark &B : programs::allBenchmarks()) {
    auto CR = frontend::compileMiniC(B.Source);
    ASSERT_TRUE(CR.Ok) << B.Name;
    for (MemModel Model : {MemModel::TSO, MemModel::PSO}) {
      StaticBaselineResult S = staticDelaySetFences(CR.Module, Model);
      EXPECT_TRUE(ir::verifyModule(S.FencedModule).empty()) << B.Name;
      SynthConfig Verify;
      Verify.Model = Model;
      Verify.Spec = B.UseNoGarbage ? SpecKind::NoGarbage
                    : B.Factory    ? SpecKind::Linearizability
                                   : SpecKind::MemorySafety;
      Verify.Factory = B.Factory;
      Verify.ExecsPerRound = 200;
      Verify.MaxRounds = 1;
      Verify.MaxRepairRounds = 0;
      Verify.FlushProb = Model == MemModel::TSO ? 0.1 : 0.5;
      SynthResult Check =
          synthesize(S.FencedModule, B.Clients, Verify);
      EXPECT_EQ(Check.ViolatingExecutions, 0u)
          << B.Name << " under " << vm::memModelName(Model)
          << ": static placement must be sound\n"
          << Check.FirstViolation;
    }
  }
}

TEST(StaticBaselineTest, FencedProgramStillComputes) {
  const char *Src = R"(
global int X = 0;
global int Y = 0;
int f(int v) {
  X = v;
  Y = X + 1;
  return X * 100 + Y;
}
)";
  auto M = frontend::compileOrDie(Src);
  StaticBaselineResult R = staticDelaySetFences(M, MemModel::PSO);
  EXPECT_EQ(vm::runSequential(R.FencedModule, "f", {4}), 405u);
}
