//===- CheckCachePropertyTest.cpp - Memoized verdict == fresh verdict -----===//
//
// Seeded fuzz over (specification, memory model, history): a verdict
// served by the CheckCache must always equal what a fresh checkExecution
// call decides — including the empty ("acceptable") verdict produced by
// the checkers' early-accept fast path, which must memoize as a present
// empty string, never be conflated with a miss. Histories come from real
// engine executions of the benchmark suite, where duplicate histories are
// plentiful, so hit paths are genuinely exercised.
//
//===----------------------------------------------------------------------===//

#include "cache/CheckCache.h"
#include "frontend/Compiler.h"
#include "programs/Benchmark.h"
#include "support/Rng.h"
#include "synth/Synthesizer.h"
#include "vm/Interp.h"

#include <gtest/gtest.h>

using namespace dfence;
using namespace dfence::synth;

namespace {

/// Every spec the cache may legally memoize for this benchmark.
std::vector<SpecKind> specsFor(const programs::Benchmark &B) {
  std::vector<SpecKind> S;
  if (B.UseNoGarbage)
    S.push_back(SpecKind::NoGarbage);
  if (B.Factory) {
    S.push_back(SpecKind::SequentialConsistency);
    S.push_back(SpecKind::Linearizability);
  }
  return S;
}

} // namespace

TEST(CheckCachePropertyTest, MemoizedVerdictsEqualFreshVerdicts) {
  uint64_t Hits = 0, Inserts = 0;
  for (const programs::Benchmark &B : programs::allBenchmarks()) {
    auto CR = frontend::compileMiniC(B.Source);
    ASSERT_TRUE(CR.Ok) << B.Name << ": " << CR.Error;
    for (SpecKind Spec : specsFor(B)) {
      SynthConfig Cfg;
      Cfg.Spec = Spec;
      Cfg.Factory = B.Factory;

      // One cache per (subject, spec, model) — verdicts are only
      // comparable within one checker configuration, mirroring how the
      // synthesizer scopes its cache to one run.
      for (vm::MemModel Model :
           {vm::MemModel::TSO, vm::MemModel::PSO}) {
        cache::CheckCache Cache(1);
        for (uint64_t Seed = 1; Seed <= 120; ++Seed) {
          vm::ExecConfig EC;
          EC.Model = Model;
          EC.Seed = deriveSeed(Seed, B.Name);
          EC.FlushProb = Model == vm::MemModel::TSO ? 0.1 : 0.5;
          vm::ExecResult R = vm::runExecution(
              CR.Module, B.Clients[Seed % B.Clients.size()], EC);
          if (R.Out != vm::Outcome::Completed)
            continue;

          // The property: fresh recomputation and the memoized verdict
          // must agree, on every history, at every point in the cache's
          // fill state.
          std::string Fresh = checkExecution(R, Cfg);
          if (const std::string *Memo = Cache.lookup(0, R.Hist)) {
            ++Hits;
            EXPECT_EQ(*Memo, Fresh)
                << B.Name << " spec=" << specKindName(Spec)
                << " model=" << vm::memModelName(Model)
                << " seed=" << EC.Seed;
          } else {
            ++Inserts;
            Cache.insert(0, R.Hist, Fresh);
            // An accepted (empty) verdict must memoize as a present
            // entry, not be mistaken for a miss on the next lookup.
            const std::string *Now = Cache.lookup(0, R.Hist);
            ASSERT_NE(Now, nullptr);
            EXPECT_EQ(*Now, Fresh);
          }
        }
      }
    }
  }
  // The suite must actually exercise the hit path; duplicate histories
  // are the whole premise of the check cache.
  EXPECT_GT(Hits, 100u);
  EXPECT_GT(Inserts, 50u);
}

TEST(CheckCachePropertyTest, RoundScopingDropsEntries) {
  cache::CheckCache Cache(2);
  vm::History H;
  vm::OpRecord Op;
  Op.Func = "put";
  Op.Thread = 0;
  Op.InvokeSeq = 1;
  Op.RespondSeq = 2;
  Op.Completed = true;
  H.Ops.push_back(Op);
  H.Hash = vm::hashHistory(H);

  Cache.insert(1, H, "");
  ASSERT_NE(Cache.lookup(1, H), nullptr);
  // Shards are isolated: the other shard never sees the entry.
  EXPECT_EQ(Cache.lookup(0, H), nullptr);
  Cache.beginRound();
  EXPECT_EQ(Cache.lookup(1, H), nullptr);

  // Totals survive the round boundary (cumulative accounting).
  cache::CheckCache::Totals T = Cache.totals();
  EXPECT_EQ(T.Hits, 1u);
  EXPECT_EQ(T.Misses, 2u);
}
