//===- SupportTest.cpp - Tests for the support library --------------------===//

#include "support/Json.h"
#include "support/Rng.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace dfence;

TEST(RngTest, DeterministicFromSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 5);
}

TEST(RngTest, ReseedResets) {
  Rng A(7);
  uint64_t First = A.next();
  A.next();
  A.reseed(7);
  EXPECT_EQ(A.next(), First);
}

TEST(RngTest, NextBelowInRange) {
  Rng R(3);
  for (uint64_t Bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(R.nextBelow(Bound), Bound);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng R(11);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I)
    Seen.insert(R.nextBelow(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng R(5);
  int True05 = 0;
  for (int I = 0; I < 10000; ++I)
    True05 += R.nextBool(0.5);
  EXPECT_NEAR(True05, 5000, 300);
  EXPECT_FALSE(R.nextBool(0.0));
  EXPECT_TRUE(R.nextBool(1.0));
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng R(9);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(StringUtilsTest, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilsTest, Strformat) {
  EXPECT_EQ(strformat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strformat("empty"), "empty");
}

TEST(StringUtilsTest, Padding) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padLeft("abcd", 2), "abcd");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
}

TEST(StringUtilsTest, HashCombineSpreads) {
  std::set<uint64_t> H;
  for (uint64_t I = 0; I < 1000; ++I)
    H.insert(hashCombine(0, I));
  EXPECT_EQ(H.size(), 1000u);
}

//===----------------------------------------------------------------------===//
// Json
//===----------------------------------------------------------------------===//

TEST(JsonTest, ParsesScalarsAndContainers) {
  std::string Error;
  auto J = Json::parse(
      R"({"a": 1, "b": -2.5, "c": "s\"x", "d": [true, false, null]})",
      Error);
  ASSERT_TRUE(J) << Error;
  EXPECT_EQ(J->find("a")->asU64(), 1u);
  EXPECT_EQ(J->find("b")->asDouble(), -2.5);
  EXPECT_EQ(J->find("c")->asString(), "s\"x");
  const Json *D = J->find("d");
  ASSERT_TRUE(D && D->isArray());
  EXPECT_EQ(D->items().size(), 3u);
  EXPECT_TRUE(D->items()[0].asBool());
  EXPECT_FALSE(D->items()[1].asBool(true));
  EXPECT_TRUE(D->items()[2].isNull());
}

TEST(JsonTest, PreservesU64SeedPrecision) {
  // Doubles lose integers above 2^53; the raw-text representation must
  // round-trip a full 64-bit seed exactly.
  uint64_t Seed = 0xfedcba9876543210ULL;
  Json J = Json::object();
  J.set("seed", Json::number(Seed));
  std::string Error;
  auto Back = Json::parse(J.dump(), Error);
  ASSERT_TRUE(Back) << Error;
  EXPECT_EQ(Back->find("seed")->asU64(), Seed);
}

TEST(JsonTest, DumpParseRoundTripNested) {
  Json Inner = Json::array();
  Inner.push(Json::number(static_cast<int64_t>(-7)));
  Inner.push(Json::string("x\ny"));
  Json J = Json::object();
  J.set("list", std::move(Inner));
  J.set("flag", Json::boolean(true));
  std::string Error;
  auto Back = Json::parse(J.dump(2), Error);
  ASSERT_TRUE(Back) << Error;
  EXPECT_EQ(Back->find("list")->items()[0].asI64(), -7);
  EXPECT_EQ(Back->find("list")->items()[1].asString(), "x\ny");
  EXPECT_TRUE(Back->find("flag")->asBool());
}

TEST(JsonTest, RejectsMalformedInput) {
  std::string Error;
  EXPECT_FALSE(Json::parse("{", Error));
  EXPECT_FALSE(Json::parse("[1,]", Error));
  EXPECT_FALSE(Json::parse("\"unterminated", Error));
  EXPECT_FALSE(Json::parse("{\"a\": 1} trailing", Error));
  EXPECT_FALSE(Error.empty());
}

TEST(JsonTest, ParsesUnicodeEscapes) {
  std::string Error;
  auto J = Json::parse("\"a\\u00e9b\\n\"", Error);
  ASSERT_TRUE(J) << Error;
  EXPECT_EQ(J->asString(), "a\xc3\xa9"
                           "b\n");
}
