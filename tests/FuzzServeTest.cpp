//===- FuzzServeTest.cpp - Fuzz campaigns through the serve daemon --------===//
//
// The via-serve campaign path fans the same request lines through an
// in-process multi-slot serve::Server (PR 9's concurrent dispatcher +
// sharded cache). The daemon's canonical-result guarantee makes every
// per-scenario result equal to the direct path's, so the campaign's
// canonical document — outcomes, fingerprints, ranked table — must be
// byte-identical between the two paths. Rides the tsan preset
// (scripts/verify-all.cmake) like the other serve concurrency suites.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"
#include "fuzz/Generator.h"
#include "fuzz/LitmusCorpus.h"

#include "gtest/gtest.h"

using namespace dfence;
using namespace dfence::fuzz;

namespace {

std::vector<Scenario> testCorpus(unsigned Count) {
  GeneratorOptions O;
  O.FuzzSeed = 0x5e4e;
  O.Count = Count;
  std::vector<Scenario> Corpus = generateScenarios(O);
  for (Scenario &S : litmusScenarios(O.FuzzSeed))
    Corpus.push_back(std::move(S));
  return Corpus;
}

CampaignConfig baseCfg() {
  CampaignConfig C;
  C.Model = "pso";
  C.K = 40;
  C.Rounds = 4;
  return C;
}

TEST(FuzzServe, TwoSlotServeMatchesDirectByteForByte) {
  std::vector<Scenario> Corpus = testCorpus(10);

  CampaignConfig Direct = baseCfg();
  CampaignResult RD = runCampaign(Corpus, Direct);

  CampaignConfig Serve = baseCfg();
  Serve.ServeSlots = 2;
  CampaignResult RS = runCampaign(Corpus, Serve);

  EXPECT_EQ(RD.canonicalJson(Direct).dump(),
            RS.canonicalJson(Direct).dump());
  EXPECT_EQ(RD.Scenarios, RS.Scenarios);
  EXPECT_EQ(RD.Rejected, RS.Rejected);
  EXPECT_GT(RD.Violating, 0u);
}

TEST(FuzzServe, DistinctFingerprintSetsAgreeAcrossSlotCounts) {
  std::vector<Scenario> Corpus = testCorpus(8);
  std::vector<std::string> Sets;
  for (unsigned Slots : {0u, 1u, 4u}) {
    CampaignConfig C = baseCfg();
    C.ServeSlots = Slots;
    CampaignResult R = runCampaign(Corpus, C);
    std::string Set;
    for (const FingerprintBucket &B : R.Distinct)
      Set += B.Hex + ":" + std::to_string(B.Count) + ";";
    Sets.push_back(Set);
  }
  EXPECT_EQ(Sets[0], Sets[1]);
  EXPECT_EQ(Sets[0], Sets[2]);
}

TEST(FuzzServe, RejectionsSurviveTheServePath) {
  // Generated clients the frontend rejects must come back as counted
  // "rejected" outcomes through the daemon too — the server's error
  // response shape, not a dropped request.
  GeneratorOptions O;
  O.FuzzSeed = 0xbad5e4e;
  O.Count = 6;
  O.TemplateProb = 1.0;
  O.ExtraTemplates.push_back(
      {"broken_mix", "int broken_mix(int n) {\n"
                     "  missing_api(n);\n"
                     "  return 0;\n"
                     "}\n"});
  std::vector<Scenario> Corpus = generateScenarios(O);

  CampaignConfig Direct = baseCfg();
  CampaignResult RD = runCampaign(Corpus, Direct);
  CampaignConfig Serve = baseCfg();
  Serve.ServeSlots = 2;
  CampaignResult RS = runCampaign(Corpus, Serve);

  EXPECT_GT(RD.Rejected, 0u);
  EXPECT_EQ(RD.Rejected, RS.Rejected);
  EXPECT_EQ(RD.Scenarios, RS.Scenarios);
}

} // namespace
