//===- LitmusCorpusTest.cpp - Golden fence pins for the litmus corpus -----===//
//
// Each mined litmus shape (src/fuzz/LitmusCorpus.cpp) carries its known
// minimal fence placement per memory model; running the corpus through
// the normal synthesis path must reproduce those placements exactly:
//
//   SB    -> one st-ld fence per writer, under TSO and PSO;
//   MP    -> clean under TSO, one st-st fence in the writer under PSO;
//   LB, WRC, IRIW -> clean under both (store-buffer models cannot
//                    produce those outcomes).
//
// Also pins the dedup contract: the three SB variants (plain, doubled
// client, reseeded) all land in one fingerprint bucket, so the
// distinct-fingerprint count of a PSO corpus run is exactly 2 (SB + MP)
// and of a TSO run exactly 1 (SB).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"
#include "fuzz/LitmusCorpus.h"
#include "support/StringUtils.h"

#include "gtest/gtest.h"

#include <map>

using namespace dfence;
using namespace dfence::fuzz;

namespace {

CampaignConfig litmusCfg(const std::string &Model) {
  CampaignConfig C;
  C.Model = Model;
  // Litmus windows are narrow; give the demonic scheduler enough
  // samples that every observable outcome fires with margin.
  C.K = 300;
  C.Rounds = 10;
  return C;
}

std::map<std::string, ScenarioOutcome> runCorpus(const std::string &Model) {
  CampaignResult R =
      runCampaign(litmusScenarios(0x11717), litmusCfg(Model));
  std::map<std::string, ScenarioOutcome> ByName;
  for (const ScenarioOutcome &O : R.Outcomes)
    ByName[O.Name] = O;
  return ByName;
}

TEST(LitmusCorpus, ShapesAreWellFormed) {
  const std::vector<LitmusShape> &Corpus = litmusCorpus();
  ASSERT_GE(Corpus.size(), 7u);
  std::map<std::string, unsigned> Families;
  for (const LitmusShape &S : Corpus) {
    EXPECT_FALSE(S.Name.empty());
    EXPECT_FALSE(S.Source.empty());
    EXPECT_FALSE(S.ClientDsl.empty());
    ++Families[S.Family];
  }
  // The SB dedup variants share one family.
  EXPECT_EQ(Families["litmus-sb"], 3u);
}

TEST(LitmusCorpus, GoldenFencesUnderPso) {
  auto ByName = runCorpus("pso");
  for (const LitmusShape &S : litmusCorpus()) {
    const ScenarioOutcome &O = ByName.at("litmus-" + S.Name);
    EXPECT_EQ(O.Status, "converged") << S.Name << ": " << O.Reason;
    EXPECT_TRUE(fencesMatchGolden(O.Fences, S.MinPso))
        << S.Name << " PSO fences: " << join(O.Fences, "; ");
    if (S.MinPso.empty())
      EXPECT_EQ(O.Violations, 0u)
          << S.Name << " must be unobservable under PSO";
    else
      EXPECT_GT(O.Violations, 0u)
          << S.Name << " must be observable under PSO";
  }
}

TEST(LitmusCorpus, GoldenFencesUnderTso) {
  auto ByName = runCorpus("tso");
  for (const LitmusShape &S : litmusCorpus()) {
    const ScenarioOutcome &O = ByName.at("litmus-" + S.Name);
    EXPECT_EQ(O.Status, "converged") << S.Name << ": " << O.Reason;
    EXPECT_TRUE(fencesMatchGolden(O.Fences, S.MinTso))
        << S.Name << " TSO fences: " << join(O.Fences, "; ");
  }
}

TEST(LitmusCorpus, SbVariantsDedupToOneBucket) {
  CampaignResult Pso =
      runCampaign(litmusScenarios(0x11717), litmusCfg("pso"));
  // PSO: the three SB variants collapse into one bucket, MP adds one.
  ASSERT_EQ(Pso.Distinct.size(), 2u);
  EXPECT_EQ(Pso.Distinct[0].Family, "litmus-sb");
  EXPECT_EQ(Pso.Distinct[0].Count, 3u);
  EXPECT_EQ(Pso.Distinct[1].Family, "litmus-mp");
  EXPECT_EQ(Pso.Distinct[1].Count, 1u);

  CampaignResult Tso =
      runCampaign(litmusScenarios(0x11717), litmusCfg("tso"));
  // TSO: MP is unobservable, only the SB bucket remains.
  ASSERT_EQ(Tso.Distinct.size(), 1u);
  EXPECT_EQ(Tso.Distinct[0].Family, "litmus-sb");
  EXPECT_EQ(Tso.Distinct[0].Count, 3u);
}

TEST(LitmusCorpus, GoldenMatcherIsPositionIndependent) {
  std::vector<GoldenFence> G = {{"sb_t1", "st-ld"}, {"sb_t2", "st-ld"}};
  EXPECT_TRUE(fencesMatchGolden(
      {"(sb_t1, 6:7) st-ld", "(sb_t2, 11:12) st-ld"}, G));
  // Line numbers are free; order is free.
  EXPECT_TRUE(fencesMatchGolden(
      {"(sb_t2, 99:100) st-ld", "(sb_t1, 1:2) st-ld"}, G));
  // Kind and function are not.
  EXPECT_FALSE(fencesMatchGolden(
      {"(sb_t1, 6:7) st-st", "(sb_t2, 11:12) st-ld"}, G));
  EXPECT_FALSE(
      fencesMatchGolden({"(sb_t1, 6:7) st-ld"}, G));
  EXPECT_FALSE(fencesMatchGolden({}, G));
  EXPECT_TRUE(fencesMatchGolden({}, {}));
}

} // namespace
