//===- DispatchDifferentialTest.cpp - generic ≡ specialized dispatch ------===//
//
// The monomorphized interpreter's headline contract (docs/ALGORITHM.md
// §13): dispatch mode is a machine-code optimization, never an observable
// one. Generic (runtime model dispatch through the StoreBufferSet facade)
// and specialized (the policy-templated per-model loop with threaded
// opcode dispatch) are instantiations of one interpreter template, so for
// every benchmark in the synthesis suite a specialized run must produce a
// SynthResult byte-identical to the generic run — same fences, same
// per-round violation counts, same diagnostics, same printed module, same
// harness accounting — at jobs=1 and jobs=8 alike, with the caches on and
// off. Step counts are pinned through the deterministic counter snapshot
// (vm_steps_total et al.), which must match after stripping only the
// exec_dispatch_* keys — the counters that *name* the mode and therefore
// differ by construction.
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "ir/Printer.h"
#include "obs/Obs.h"
#include "programs/Benchmark.h"
#include "support/Rng.h"
#include "synth/Synthesizer.h"

#include <gtest/gtest.h>

using namespace dfence;
using namespace dfence::programs;
using namespace dfence::synth;
using vm::DispatchMode;
using vm::MemModel;

namespace {

SpecKind strictestSpec(const Benchmark &B) {
  if (B.UseNoGarbage)
    return SpecKind::NoGarbage;
  return B.Factory ? SpecKind::Linearizability : SpecKind::MemorySafety;
}

SynthResult run(const Benchmark &B, MemModel Model, DispatchMode Dispatch,
                unsigned Jobs, bool CacheOn,
                obs::Registry *Reg = nullptr) {
  auto CR = frontend::compileMiniC(B.Source);
  EXPECT_TRUE(CR.Ok) << B.Name << ": " << CR.Error;
  SynthConfig Cfg;
  Cfg.Model = Model;
  Cfg.Spec = strictestSpec(B);
  Cfg.Factory = B.Factory;
  Cfg.Dispatch = Dispatch;
  Cfg.ExecsPerRound = 150;
  Cfg.MaxRounds = 8;
  Cfg.MaxRepairRounds = 8;
  Cfg.MaxStepsPerExec = 20000;
  Cfg.FlushProb = Model == MemModel::TSO ? 0.1 : 0.5;
  if (Model == MemModel::PSO)
    Cfg.FlushProbs = {0.5, 0.1};
  Cfg.BaseSeed = deriveSeed(0x5eed, B.Name);
  Cfg.Jobs = Jobs;
  Cfg.CacheEnabled = CacheOn;
  obs::ObsContext Obs;
  if (Reg) {
    Obs.Metrics = Reg;
    Cfg.Obs = &Obs;
  }
  return synthesize(CR.Module, B.Clients, Cfg);
}

/// Every observable SynthResult field, cache statistics included (the
/// caches see identical executions under either dispatch mode, so even
/// those must agree when the cache setting matches).
void expectEquivalent(const SynthResult &A, const SynthResult &B,
                      const std::string &What) {
  EXPECT_EQ(A.Status, B.Status) << What;
  EXPECT_EQ(A.Converged, B.Converged) << What;
  EXPECT_EQ(A.CannotFix, B.CannotFix) << What;
  EXPECT_EQ(A.Degraded, B.Degraded) << What;
  EXPECT_EQ(A.DegradeReason, B.DegradeReason) << What;
  EXPECT_EQ(A.Error, B.Error) << What;
  EXPECT_EQ(A.fenceSummary(), B.fenceSummary()) << What;
  EXPECT_EQ(A.Rounds, B.Rounds) << What;
  EXPECT_EQ(A.TotalExecutions, B.TotalExecutions) << What;
  EXPECT_EQ(A.ViolatingExecutions, B.ViolatingExecutions) << What;
  EXPECT_EQ(A.DiscardedExecutions, B.DiscardedExecutions) << What;
  EXPECT_EQ(A.RetriedExecutions, B.RetriedExecutions) << What;
  EXPECT_EQ(A.TimedOutExecutions, B.TimedOutExecutions) << What;
  EXPECT_EQ(A.DistinctPredicates, B.DistinctPredicates) << What;
  EXPECT_EQ(A.StaticFallbackFences, B.StaticFallbackFences) << What;
  EXPECT_EQ(A.FirstViolation, B.FirstViolation) << What;
  EXPECT_EQ(A.CheckCacheHits, B.CheckCacheHits) << What;
  EXPECT_EQ(A.CheckCacheMisses, B.CheckCacheMisses) << What;
  EXPECT_EQ(A.ExecCacheHits, B.ExecCacheHits) << What;
  EXPECT_EQ(A.ExecCacheMisses, B.ExecCacheMisses) << What;
  EXPECT_EQ(ir::printModule(A.FencedModule),
            ir::printModule(B.FencedModule))
      << What;
  ASSERT_EQ(A.RoundLog.size(), B.RoundLog.size()) << What;
  for (size_t I = 0; I != A.RoundLog.size(); ++I) {
    EXPECT_EQ(A.RoundLog[I].Round, B.RoundLog[I].Round) << What;
    EXPECT_EQ(A.RoundLog[I].Executions, B.RoundLog[I].Executions)
        << What << " round " << I;
    EXPECT_EQ(A.RoundLog[I].Violations, B.RoundLog[I].Violations)
        << What << " round " << I;
    EXPECT_EQ(A.RoundLog[I].FencesEnforced, B.RoundLog[I].FencesEnforced)
        << What << " round " << I;
    EXPECT_EQ(A.RoundLog[I].SampleViolation,
              B.RoundLog[I].SampleViolation)
        << What << " round " << I;
  }
  ASSERT_EQ(A.Bundles.size(), B.Bundles.size()) << What;
  for (size_t I = 0; I != A.Bundles.size(); ++I)
    EXPECT_EQ(A.Bundles[I].toJson().dump(), B.Bundles[I].toJson().dump())
        << What << " bundle " << I;
}

/// The registry's deterministic counter snapshot with only the
/// exec_dispatch_* keys removed. vm_steps_total and every other counter
/// — the cache ones included — must agree between dispatch modes.
std::string countersMinusDispatch(obs::Registry &Reg) {
  Json Doc = Reg.countersJson();
  const Json *Counters = Doc.find("counters");
  if (!Counters)
    return "{}";
  Json Out = Json::object();
  for (const auto &[Key, Val] : Counters->members())
    if (Key.rfind("exec_dispatch_", 0) != 0)
      Out.set(Key, Val);
  return Out.dump();
}

/// The registry's value for counter \p Name, or 0 when absent.
uint64_t counterValue(obs::Registry &Reg, const char *Name) {
  Json Doc = Reg.countersJson();
  const Json *Counters = Doc.find("counters");
  if (!Counters)
    return 0;
  const Json *V = Counters->find(Name);
  return V ? V->asU64() : 0;
}

} // namespace

class DispatchDifferentialTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(DispatchDifferentialTest, GenericAndSpecializedByteIdentical) {
  const Benchmark &B = benchmarkByName(GetParam());
  for (MemModel Model : {MemModel::TSO, MemModel::PSO}) {
    obs::Registry RegSpec1, RegGen1, RegSpec8, RegGen8;
    SynthResult Spec1 =
        run(B, Model, DispatchMode::Specialized, 1, true, &RegSpec1);
    SynthResult Gen1 =
        run(B, Model, DispatchMode::Generic, 1, true, &RegGen1);
    SynthResult Spec8 =
        run(B, Model, DispatchMode::Specialized, 8, true, &RegSpec8);
    SynthResult Gen8 =
        run(B, Model, DispatchMode::Generic, 8, true, &RegGen8);
    std::string What =
        B.Name + std::string("/") + vm::memModelName(Model);
    expectEquivalent(Spec1, Gen1, What + " spec1-vs-gen1");
    expectEquivalent(Spec1, Spec8, What + " spec1-vs-spec8");
    expectEquivalent(Spec1, Gen8, What + " spec1-vs-gen8");

    // Counter snapshots (vm_steps_total — the per-execution step counts
    // summed on the merge thread — among them) agree after stripping
    // only the mode-naming exec_dispatch_* keys, at either jobs width.
    EXPECT_EQ(countersMinusDispatch(RegSpec1),
              countersMinusDispatch(RegGen1))
        << What;
    EXPECT_EQ(countersMinusDispatch(RegSpec8),
              countersMinusDispatch(RegGen8))
        << What;
    // The mode counters themselves: every execution of a run lands on
    // that run's mode counter, none on the other's, jobs-invariantly.
    EXPECT_EQ(counterValue(RegSpec1, "exec_dispatch_specialized"),
              Spec1.TotalExecutions)
        << What;
    EXPECT_EQ(counterValue(RegSpec1, "exec_dispatch_generic"), 0u)
        << What;
    EXPECT_EQ(counterValue(RegGen1, "exec_dispatch_generic"),
              Gen1.TotalExecutions)
        << What;
    EXPECT_EQ(counterValue(RegGen1, "exec_dispatch_specialized"), 0u)
        << What;
    EXPECT_EQ(RegSpec1.countersJson().dump(),
              RegSpec8.countersJson().dump())
        << What;

    // And the equivalence holds with the caches off too (the modes must
    // not lean on the cache to look identical).
    SynthResult SpecOff =
        run(B, Model, DispatchMode::Specialized, 1, false);
    SynthResult GenOff = run(B, Model, DispatchMode::Generic, 1, false);
    expectEquivalent(SpecOff, GenOff, What + " specOff-vs-genOff");
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, DispatchDifferentialTest,
    ::testing::ValuesIn([] {
      std::vector<std::string> Names;
      for (const Benchmark &B : allBenchmarks())
        Names.push_back(B.Name);
      return Names;
    }()),
    [](const auto &Info) {
      std::string Name = Info.param;
      for (char &Ch : Name)
        if (Ch == ' ' || Ch == '-')
          Ch = '_';
      return Name;
    });
