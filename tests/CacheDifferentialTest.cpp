//===- CacheDifferentialTest.cpp - cache=on ≡ cache=off, at any jobs ------===//
//
// The result caches' headline contract (docs/ALGORITHM.md §12): caching
// is an execution-plan optimization, never an observable one. For every
// benchmark in the synthesis suite, a run with the caches on must produce
// a SynthResult byte-identical to the run with them off — same fences,
// same per-round violation counts, same first-violation diagnostics, same
// harness accounting — at jobs=1 and jobs=8 alike, and the deterministic
// metrics counter snapshot must match after stripping the cache_* keys
// (the only counters allowed to differ, since they describe the caches
// themselves). The check cache's full-history re-verification and the
// execution cache's full-key compare are what make this pinnable as
// equality rather than approximation.
//
//===----------------------------------------------------------------------===//

#include "cache/ExecCache.h"
#include "frontend/Compiler.h"
#include "ir/Printer.h"
#include "obs/Obs.h"
#include "programs/Benchmark.h"
#include "support/Rng.h"
#include "synth/Synthesizer.h"

#include <gtest/gtest.h>

using namespace dfence;
using namespace dfence::programs;
using namespace dfence::synth;
using vm::MemModel;

namespace {

SpecKind strictestSpec(const Benchmark &B) {
  if (B.UseNoGarbage)
    return SpecKind::NoGarbage;
  return B.Factory ? SpecKind::Linearizability : SpecKind::MemorySafety;
}

SynthResult run(const Benchmark &B, MemModel Model, bool CacheOn,
                unsigned Jobs, obs::Registry *Reg = nullptr) {
  auto CR = frontend::compileMiniC(B.Source);
  EXPECT_TRUE(CR.Ok) << B.Name << ": " << CR.Error;
  SynthConfig Cfg;
  Cfg.Model = Model;
  Cfg.Spec = strictestSpec(B);
  Cfg.Factory = B.Factory;
  Cfg.ExecsPerRound = 150;
  Cfg.MaxRounds = 8;
  Cfg.MaxRepairRounds = 8;
  Cfg.MaxStepsPerExec = 20000;
  Cfg.FlushProb = Model == MemModel::TSO ? 0.1 : 0.5;
  if (Model == MemModel::PSO)
    Cfg.FlushProbs = {0.5, 0.1};
  Cfg.BaseSeed = deriveSeed(0x5eed, B.Name);
  Cfg.Jobs = Jobs;
  Cfg.CacheEnabled = CacheOn;
  obs::ObsContext Obs;
  if (Reg) {
    Obs.Metrics = Reg;
    Cfg.Obs = &Obs;
  }
  return synthesize(CR.Module, B.Clients, Cfg);
}

/// Every observable SynthResult field — everything except the four
/// cache-statistics fields, which describe the caches themselves.
void expectEquivalent(const SynthResult &A, const SynthResult &B,
                      const std::string &What) {
  EXPECT_EQ(A.Status, B.Status) << What;
  EXPECT_EQ(A.Converged, B.Converged) << What;
  EXPECT_EQ(A.CannotFix, B.CannotFix) << What;
  EXPECT_EQ(A.Degraded, B.Degraded) << What;
  EXPECT_EQ(A.DegradeReason, B.DegradeReason) << What;
  EXPECT_EQ(A.Error, B.Error) << What;
  EXPECT_EQ(A.fenceSummary(), B.fenceSummary()) << What;
  EXPECT_EQ(A.Rounds, B.Rounds) << What;
  EXPECT_EQ(A.TotalExecutions, B.TotalExecutions) << What;
  EXPECT_EQ(A.ViolatingExecutions, B.ViolatingExecutions) << What;
  EXPECT_EQ(A.DiscardedExecutions, B.DiscardedExecutions) << What;
  EXPECT_EQ(A.RetriedExecutions, B.RetriedExecutions) << What;
  EXPECT_EQ(A.TimedOutExecutions, B.TimedOutExecutions) << What;
  EXPECT_EQ(A.DistinctPredicates, B.DistinctPredicates) << What;
  EXPECT_EQ(A.StaticFallbackFences, B.StaticFallbackFences) << What;
  EXPECT_EQ(A.FirstViolation, B.FirstViolation) << What;
  EXPECT_EQ(ir::printModule(A.FencedModule),
            ir::printModule(B.FencedModule))
      << What;
  ASSERT_EQ(A.RoundLog.size(), B.RoundLog.size()) << What;
  for (size_t I = 0; I != A.RoundLog.size(); ++I) {
    EXPECT_EQ(A.RoundLog[I].Round, B.RoundLog[I].Round) << What;
    EXPECT_EQ(A.RoundLog[I].Executions, B.RoundLog[I].Executions)
        << What << " round " << I;
    EXPECT_EQ(A.RoundLog[I].Violations, B.RoundLog[I].Violations)
        << What << " round " << I;
    EXPECT_EQ(A.RoundLog[I].FencesEnforced, B.RoundLog[I].FencesEnforced)
        << What << " round " << I;
    EXPECT_EQ(A.RoundLog[I].SampleViolation,
              B.RoundLog[I].SampleViolation)
        << What << " round " << I;
  }
  ASSERT_EQ(A.Bundles.size(), B.Bundles.size()) << What;
  for (size_t I = 0; I != A.Bundles.size(); ++I)
    EXPECT_EQ(A.Bundles[I].toJson().dump(), B.Bundles[I].toJson().dump())
        << What << " bundle " << I;
}

/// The registry's deterministic counter snapshot with the cache_* keys
/// removed (and "metrics"-level snapshots of them, should they appear).
std::string countersMinusCache(obs::Registry &Reg) {
  Json Doc = Reg.countersJson();
  const Json *Counters = Doc.find("counters");
  if (!Counters)
    return "{}";
  Json Out = Json::object();
  for (const auto &[Key, Val] : Counters->members())
    if (Key.rfind("cache_", 0) != 0)
      Out.set(Key, Val);
  return Out.dump();
}

} // namespace

class CacheDifferentialTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(CacheDifferentialTest, OnAndOffByteIdenticalAtOneAndEightJobs) {
  const Benchmark &B = benchmarkByName(GetParam());
  for (MemModel Model : {MemModel::TSO, MemModel::PSO}) {
    obs::Registry RegOn1, RegOff1, RegOn8, RegOff8;
    SynthResult On1 = run(B, Model, /*CacheOn=*/true, 1, &RegOn1);
    SynthResult Off1 = run(B, Model, /*CacheOn=*/false, 1, &RegOff1);
    SynthResult On8 = run(B, Model, /*CacheOn=*/true, 8, &RegOn8);
    SynthResult Off8 = run(B, Model, /*CacheOn=*/false, 8, &RegOff8);
    std::string What =
        B.Name + std::string("/") + vm::memModelName(Model);
    expectEquivalent(On1, Off1, What + " on1-vs-off1");
    expectEquivalent(On1, On8, What + " on1-vs-on8");
    expectEquivalent(On1, Off8, What + " on1-vs-off8");

    // The deterministic counter snapshots agree after stripping the
    // cache-describing keys; with caching on they also agree *across
    // jobs* including those keys (cache counters are jobs-invariant).
    EXPECT_EQ(countersMinusCache(RegOn1), countersMinusCache(RegOff1))
        << What;
    EXPECT_EQ(countersMinusCache(RegOn8), countersMinusCache(RegOff8))
        << What;
    EXPECT_EQ(RegOn1.countersJson().dump(), RegOn8.countersJson().dump())
        << What;

    // The comparison must not be vacuous: for memoizable specs the
    // cache-on runs have to show real check-cache traffic.
    if (strictestSpec(B) != SpecKind::MemorySafety)
      EXPECT_GT(On1.CheckCacheHits + On1.CheckCacheMisses, 0u) << What;

    // Cache statistics must also be jobs-invariant in the SynthResult.
    EXPECT_EQ(On1.CheckCacheHits, On8.CheckCacheHits) << What;
    EXPECT_EQ(On1.CheckCacheMisses, On8.CheckCacheMisses) << What;
    EXPECT_EQ(On1.ExecCacheHits, On8.ExecCacheHits) << What;
    EXPECT_EQ(On1.ExecCacheMisses, On8.ExecCacheMisses) << What;
    // And the off runs must report no cache activity at all.
    EXPECT_EQ(Off1.CheckCacheHits + Off1.CheckCacheMisses +
                  Off1.ExecCacheHits + Off1.ExecCacheMisses,
              0u)
        << What;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, CacheDifferentialTest,
    ::testing::ValuesIn([] {
      std::vector<std::string> Names;
      for (const Benchmark &B : allBenchmarks())
        Names.push_back(B.Name);
      return Names;
    }()),
    [](const auto &Info) {
      std::string Name = Info.param;
      for (char &Ch : Name)
        if (Ch == ' ' || Ch == '-')
          Ch = '_';
      return Name;
    });

TEST(CacheDifferentialTest, SharedExecCacheAcceleratesReverification) {
  // The cross-run scenario the ExecCache exists for: synthesize once,
  // then re-verify the *fenced* result with the same knobs through a
  // shared cache. The second run's executions are all cache hits, and
  // its observable result is identical to a cold re-run.
  const Benchmark &B = benchmarkByName("Chase-Lev WSQ");
  auto CR = frontend::compileMiniC(B.Source);
  ASSERT_TRUE(CR.Ok);
  SynthConfig Cfg;
  Cfg.Model = MemModel::PSO;
  Cfg.Spec = SpecKind::SequentialConsistency;
  Cfg.Factory = B.Factory;
  Cfg.ExecsPerRound = 120;
  Cfg.MaxRounds = 2;
  Cfg.MaxRepairRounds = 0;
  Cfg.CleanRoundsRequired = 2;
  Cfg.BaseSeed = deriveSeed(0x5eed, B.Name);

  // First synthesize the fences, then verify the fenced module twice —
  // once cold, once against the shared cache warmed by the cold run.
  SynthConfig Synth = Cfg;
  Synth.MaxRounds = 8;
  Synth.MaxRepairRounds = 8;
  SynthResult Fenced = synthesize(CR.Module, B.Clients, Synth);
  ASSERT_TRUE(Fenced.Converged) << Fenced.FirstViolation;

  cache::ExecCache Shared;
  Cfg.ExecResultCache = &Shared;
  SynthResult Cold = synthesize(Fenced.FencedModule, B.Clients, Cfg);
  EXPECT_EQ(Cold.ExecCacheHits, 0u);
  EXPECT_GT(Shared.size(), 0u);

  SynthResult Warm = synthesize(Fenced.FencedModule, B.Clients, Cfg);
  EXPECT_EQ(Warm.ExecCacheHits, Warm.TotalExecutions)
      << "an unchanged program re-verified with unchanged knobs must be "
         "served entirely from the shared cache";
  expectEquivalent(Cold, Warm, "cold vs warm re-verification");
}
