//===- SchedTest.cpp - Scheduler unit tests -------------------------------===//

#include "sched/RandomFlushScheduler.h"
#include "sched/ReplayScheduler.h"
#include "sched/RoundRobinScheduler.h"

#include "frontend/Compiler.h"
#include "vm/Interp.h"

#include <gtest/gtest.h>

using namespace dfence;
using namespace dfence::sched;

namespace {

ThreadView makeView(uint32_t Tid, bool Runnable, size_t Pending,
                    bool Shared = true) {
  ThreadView V;
  V.Tid = Tid;
  V.Runnable = Runnable;
  V.PendingStores = Pending;
  V.NextIsShared = Shared;
  if (Pending)
    V.BufferedVars = {100 + Tid};
  return V;
}

} // namespace

TEST(SchedTest, PicksOnlySchedulableThreads) {
  RandomFlushScheduler S;
  Rng R(1);
  std::vector<ThreadView> Views = {
      makeView(0, false, 0), // Done, nothing pending: never pickable.
      makeView(1, true, 0),
      makeView(2, false, 3), // Done but pending flushes.
  };
  for (int I = 0; I < 200; ++I) {
    Action A = S.pick(Views, R);
    EXPECT_NE(A.Tid, 0u);
    if (A.Tid == 2)
      EXPECT_EQ(A.Kind, Action::Flush)
          << "a finished thread can only flush";
    if (A.Tid == 1)
      EXPECT_EQ(A.Kind, Action::StepThread);
  }
}

TEST(SchedTest, FlushProbabilityZeroNeverFlushesRunnable) {
  RandomFlushConfig Cfg;
  Cfg.FlushProb = 0.0;
  Cfg.PartialOrderReduction = false;
  RandomFlushScheduler S(Cfg);
  Rng R(2);
  std::vector<ThreadView> Views = {makeView(0, true, 5)};
  for (int I = 0; I < 100; ++I) {
    Action A = S.pick(Views, R);
    EXPECT_EQ(A.Kind, Action::StepThread);
  }
}

TEST(SchedTest, FlushProbabilityOneAlwaysFlushesPending) {
  RandomFlushConfig Cfg;
  Cfg.FlushProb = 1.0;
  Cfg.PartialOrderReduction = false;
  RandomFlushScheduler S(Cfg);
  Rng R(3);
  std::vector<ThreadView> Views = {makeView(0, true, 5)};
  for (int I = 0; I < 100; ++I) {
    Action A = S.pick(Views, R);
    EXPECT_EQ(A.Kind, Action::Flush);
    EXPECT_TRUE(A.HasVar);
  }
}

TEST(SchedTest, PartialOrderReductionKeepsLocalThread) {
  RandomFlushConfig Cfg;
  Cfg.PartialOrderReduction = true;
  RandomFlushScheduler S(Cfg);
  Rng R(4);
  std::vector<ThreadView> Views = {makeView(0, true, 0, /*Shared=*/false),
                                   makeView(1, true, 0, /*Shared=*/false)};
  Action First = S.pick(Views, R);
  // Once a thread is running local code, it keeps running (up to the
  // streak limit).
  for (int I = 0; I < 50; ++I) {
    Action A = S.pick(Views, R);
    EXPECT_EQ(A.Tid, First.Tid);
    EXPECT_EQ(A.Kind, Action::StepThread);
  }
}

TEST(SchedTest, StreakLimitForcesReschedule) {
  RandomFlushConfig Cfg;
  Cfg.PartialOrderReduction = true;
  Cfg.MaxLocalStreak = 4;
  RandomFlushScheduler S(Cfg);
  Rng R(5);
  std::vector<ThreadView> Views = {makeView(0, true, 0, false),
                                   makeView(1, true, 0, false)};
  std::set<uint32_t> Picked;
  for (int I = 0; I < 500; ++I)
    Picked.insert(S.pick(Views, R).Tid);
  EXPECT_EQ(Picked.size(), 2u) << "both threads must eventually run";
}

TEST(SchedTest, ResetClearsState) {
  RandomFlushScheduler S;
  Rng R(6);
  std::vector<ThreadView> Views = {makeView(0, true, 0, false),
                                   makeView(1, true, 0, false)};
  (void)S.pick(Views, R);
  S.reset();
  // After a reset no stale POR streak remains; picks still valid.
  Action A = S.pick(Views, R);
  EXPECT_LT(A.Tid, 2u);
}

TEST(SchedTest, DeterministicGivenRng) {
  RandomFlushScheduler S1, S2;
  Rng R1(7), R2(7);
  std::vector<ThreadView> Views = {makeView(0, true, 2),
                                   makeView(1, true, 0),
                                   makeView(2, true, 1)};
  for (int I = 0; I < 200; ++I) {
    Action A = S1.pick(Views, R1);
    Action B = S2.pick(Views, R2);
    EXPECT_EQ(A.Kind, B.Kind);
    EXPECT_EQ(A.Tid, B.Tid);
    EXPECT_EQ(A.Var, B.Var);
  }
}

//===----------------------------------------------------------------------===//
// Replay scheduler
//===----------------------------------------------------------------------===//

namespace {

const char *SbSrcSched = R"(
global int X = 0;
global int Y = 0;
int t1() { X = 1; return Y; }
int t2() { Y = 1; return X; }
)";

vm::Client sbClient() {
  vm::Client C;
  vm::ThreadScript S1, S2;
  vm::MethodCall M1;
  M1.Func = "t1";
  vm::MethodCall M2;
  M2.Func = "t2";
  S1.Calls = {M1};
  S2.Calls = {M2};
  C.Threads = {S1, S2};
  return C;
}

} // namespace

TEST(ReplaySchedulerTest, ReproducesExecutionExactly) {
  auto M = frontend::compileOrDie(SbSrcSched);
  vm::Client C = sbClient();
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    vm::ExecConfig Rec;
    Rec.Model = vm::MemModel::PSO;
    Rec.Seed = Seed;
    Rec.FlushProb = 0.2;
    Rec.RecordTrace = true;
    vm::ExecResult Original = vm::runExecution(M, C, Rec);
    ASSERT_FALSE(Original.Trace.empty());

    ReplayScheduler Replay(Original.Trace);
    vm::ExecConfig Rep;
    Rep.Model = vm::MemModel::PSO;
    Rep.Seed = 999999; // Irrelevant: the trace drives everything.
    Rep.Sched = &Replay;
    vm::ExecResult Replayed = vm::runExecution(M, C, Rep);

    EXPECT_EQ(Replayed.Out, Original.Out);
    EXPECT_EQ(Replayed.Steps, Original.Steps);
    ASSERT_EQ(Replayed.Hist.Ops.size(), Original.Hist.Ops.size());
    for (size_t I = 0; I != Original.Hist.Ops.size(); ++I) {
      EXPECT_EQ(Replayed.Hist.Ops[I].Ret, Original.Hist.Ops[I].Ret);
      EXPECT_EQ(Replayed.Hist.Ops[I].InvokeSeq,
                Original.Hist.Ops[I].InvokeSeq);
      EXPECT_EQ(Replayed.Hist.Ops[I].RespondSeq,
                Original.Hist.Ops[I].RespondSeq);
    }
  }
}

TEST(ReplaySchedulerTest, ReproducesViolations) {
  // Find a seed whose execution violates memory safety, then replay it.
  const char *Src = R"(
global int FLAG = 0;
global int PTR = 0;
int writer() {
  int p = malloc(2);
  PTR = p;
  FLAG = 1;
  return 0;
}
int reader() {
  int f = FLAG;
  if (f == 1) {
    int p = PTR;
    return *p;
  }
  return 0;
}
)";
  auto M = frontend::compileOrDie(Src);
  vm::Client C;
  vm::ThreadScript W, R;
  vm::MethodCall MW;
  MW.Func = "writer";
  vm::MethodCall MR;
  MR.Func = "reader";
  W.Calls = {MW};
  R.Calls = {MR};
  C.Threads = {W, R};

  bool Replayed = false;
  for (uint64_t Seed = 1; Seed <= 3000 && !Replayed; ++Seed) {
    vm::ExecConfig Rec;
    Rec.Model = vm::MemModel::PSO;
    Rec.Seed = Seed;
    Rec.FlushProb = 0.1;
    Rec.RecordTrace = true;
    vm::ExecResult Orig = vm::runExecution(M, C, Rec);
    if (Orig.Out != vm::Outcome::MemSafety)
      continue;
    ReplayScheduler Replay(Orig.Trace);
    vm::ExecConfig Rep;
    Rep.Model = vm::MemModel::PSO;
    Rep.Sched = &Replay;
    vm::ExecResult Again = vm::runExecution(M, C, Rep);
    EXPECT_EQ(Again.Out, vm::Outcome::MemSafety);
    EXPECT_EQ(Again.Message, Orig.Message);
    Replayed = true;
  }
  EXPECT_TRUE(Replayed) << "no violation found to replay";
}

//===----------------------------------------------------------------------===//
// Round-robin scheduler
//===----------------------------------------------------------------------===//

TEST(RoundRobinTest, FullyDeterministicWithoutSeeds) {
  auto M = frontend::compileOrDie(SbSrcSched);
  vm::Client C = sbClient();
  RoundRobinScheduler S1, S2;
  vm::ExecConfig Cfg1;
  Cfg1.Model = vm::MemModel::TSO;
  Cfg1.Seed = 1;
  Cfg1.Sched = &S1;
  vm::ExecConfig Cfg2 = Cfg1;
  Cfg2.Seed = 424242; // Different seed; same schedule regardless.
  Cfg2.Sched = &S2;
  vm::ExecResult A = vm::runExecution(M, C, Cfg1);
  vm::ExecResult B = vm::runExecution(M, C, Cfg2);
  EXPECT_EQ(A.Steps, B.Steps);
  ASSERT_EQ(A.Hist.Ops.size(), B.Hist.Ops.size());
  for (size_t I = 0; I != A.Hist.Ops.size(); ++I)
    EXPECT_EQ(A.Hist.Ops[I].Ret, B.Hist.Ops[I].Ret);
}

TEST(RoundRobinTest, CompletesLockedPrograms) {
  const char *Src = R"(
global int L = 0;
global int G = 0;
int bump() {
  lock(&L);
  G = G + 1;
  unlock(&L);
  return G;
}
)";
  auto M = frontend::compileOrDie(Src);
  vm::Client C;
  for (int T = 0; T < 3; ++T) {
    vm::ThreadScript S;
    vm::MethodCall MC;
    MC.Func = "bump";
    S.Calls = {MC, MC};
    C.Threads.push_back(S);
  }
  RoundRobinScheduler S;
  vm::ExecConfig Cfg;
  Cfg.Model = vm::MemModel::PSO;
  Cfg.Sched = &S;
  vm::ExecResult R = vm::runExecution(M, C, Cfg);
  EXPECT_EQ(R.Out, vm::Outcome::Completed) << R.Message;
  EXPECT_EQ(R.Hist.Ops.size(), 6u);
}

TEST(RoundRobinTest, WeakerThanDemonicAtExposingViolations) {
  // The deterministic baseline yields exactly one schedule, so it can
  // observe at most one outcome of the SB litmus; the demonic scheduler
  // observes several. (This motivates the flush-delaying scheduler.)
  auto M = frontend::compileOrDie(SbSrcSched);
  vm::Client C = sbClient();
  std::set<std::pair<vm::Word, vm::Word>> RrOutcomes, DemonicOutcomes;
  for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
    RoundRobinScheduler S;
    vm::ExecConfig Cfg;
    Cfg.Model = vm::MemModel::PSO;
    Cfg.Seed = Seed;
    Cfg.Sched = &S;
    vm::ExecResult R = vm::runExecution(M, C, Cfg);
    vm::Word Rets[2] = {0, 0};
    for (const auto &Op : R.Hist.Ops)
      Rets[Op.Thread] = Op.Ret;
    RrOutcomes.insert({Rets[0], Rets[1]});

    vm::ExecConfig D;
    D.Model = vm::MemModel::PSO;
    D.Seed = Seed;
    D.FlushProb = 0.2;
    vm::ExecResult RD = vm::runExecution(M, C, D);
    vm::Word DRets[2] = {0, 0};
    for (const auto &Op : RD.Hist.Ops)
      DRets[Op.Thread] = Op.Ret;
    DemonicOutcomes.insert({DRets[0], DRets[1]});
  }
  EXPECT_EQ(RrOutcomes.size(), 1u);
  EXPECT_GT(DemonicOutcomes.size(), 1u);
}
