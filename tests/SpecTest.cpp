//===- SpecTest.cpp - Sequential specs and history checkers ---------------===//

#include "spec/Checkers.h"
#include "spec/Specs.h"

#include <gtest/gtest.h>

using namespace dfence;
using namespace dfence::spec;
using vm::EmptyVal;
using vm::History;
using vm::OpRecord;
using vm::Word;

namespace {

/// History construction helper: sequential timestamps are assigned from
/// the (InvokeSeq, RespondSeq) pairs given explicitly.
OpRecord op(const char *Func, std::vector<Word> Args, Word Ret,
            uint32_t Thread, uint64_t Inv, uint64_t Res) {
  OpRecord O;
  O.Func = Func;
  O.Args = std::move(Args);
  O.Ret = Ret;
  O.Thread = Thread;
  O.InvokeSeq = Inv;
  O.RespondSeq = Res;
  O.Completed = true;
  return O;
}

} // namespace

//===----------------------------------------------------------------------===//
// Specs
//===----------------------------------------------------------------------===//

TEST(SpecsTest, WsqDequeSemantics) {
  WsqSpec S(DequeEnd::Tail, DequeEnd::Head);
  EXPECT_TRUE(S.apply(op("put", {1}, 0, 0, 1, 2)));
  EXPECT_TRUE(S.apply(op("put", {2}, 0, 0, 3, 4)));
  EXPECT_TRUE(S.apply(op("steal", {}, 1, 1, 5, 6))); // head
  EXPECT_TRUE(S.apply(op("take", {}, 2, 0, 7, 8)));  // tail
  EXPECT_TRUE(S.apply(op("take", {}, EmptyVal, 0, 9, 10)));
}

TEST(SpecsTest, WsqRejectsWrongValue) {
  WsqSpec S(DequeEnd::Tail, DequeEnd::Head);
  EXPECT_TRUE(S.apply(op("put", {1}, 0, 0, 1, 2)));
  EXPECT_FALSE(S.apply(op("take", {}, 9, 0, 3, 4)));
}

TEST(SpecsTest, WsqRejectsEmptyOnNonEmpty) {
  WsqSpec S(DequeEnd::Tail, DequeEnd::Head);
  EXPECT_TRUE(S.apply(op("put", {1}, 0, 0, 1, 2)));
  EXPECT_FALSE(S.apply(op("steal", {}, EmptyVal, 1, 3, 4)));
}

TEST(SpecsTest, WsqStackVariant) {
  WsqSpec S(DequeEnd::Tail, DequeEnd::Tail); // LIFO WSQ shape
  EXPECT_TRUE(S.apply(op("put", {1}, 0, 0, 1, 2)));
  EXPECT_TRUE(S.apply(op("put", {2}, 0, 0, 3, 4)));
  EXPECT_TRUE(S.apply(op("steal", {}, 2, 1, 5, 6))) << "steal pops top";
}

TEST(SpecsTest, QueueFifoOrder) {
  QueueSpec S;
  EXPECT_TRUE(S.apply(op("enqueue", {1}, 0, 0, 1, 2)));
  EXPECT_TRUE(S.apply(op("enqueue", {2}, 0, 0, 3, 4)));
  EXPECT_FALSE(S.clone()->apply(op("dequeue", {}, 2, 1, 5, 6)));
  EXPECT_TRUE(S.apply(op("dequeue", {}, 1, 1, 5, 6)));
  EXPECT_TRUE(S.apply(op("dequeue", {}, 2, 1, 7, 8)));
  EXPECT_TRUE(S.apply(op("dequeue", {}, EmptyVal, 1, 9, 10)));
}

TEST(SpecsTest, SetSemantics) {
  SetSpec S;
  EXPECT_TRUE(S.apply(op("add", {5}, 1, 0, 1, 2)));
  EXPECT_FALSE(S.clone()->apply(op("add", {5}, 1, 0, 3, 4)))
      << "re-adding must return 0";
  EXPECT_TRUE(S.apply(op("add", {5}, 0, 0, 3, 4)));
  EXPECT_TRUE(S.apply(op("contains", {5}, 1, 1, 5, 6)));
  EXPECT_TRUE(S.apply(op("remove", {5}, 1, 1, 7, 8)));
  EXPECT_TRUE(S.apply(op("contains", {5}, 0, 0, 9, 10)));
  EXPECT_TRUE(S.apply(op("remove", {5}, 0, 0, 11, 12)));
}

TEST(SpecsTest, AllocatorFreshnessAndFree) {
  AllocatorSpec S;
  EXPECT_TRUE(S.apply(op("alloc", {}, 100, 0, 1, 2)));
  EXPECT_FALSE(S.clone()->apply(op("alloc", {}, 100, 1, 3, 4)))
      << "double allocation of a live pointer is invalid";
  EXPECT_TRUE(S.apply(op("alloc", {}, 200, 1, 3, 4)));
  EXPECT_TRUE(S.apply(op("release", {100}, 0, 0, 5, 6)));
  EXPECT_TRUE(S.apply(op("alloc", {}, 100, 0, 7, 8)))
      << "freed pointers may be handed out again";
  EXPECT_FALSE(S.clone()->apply(op("release", {999}, 0, 0, 9, 10)))
      << "freeing a non-live pointer is invalid";
  EXPECT_FALSE(S.clone()->apply(op("alloc", {}, 0, 0, 9, 10)))
      << "allocator must not return null";
}

TEST(SpecsTest, HashDistinguishesStates) {
  WsqSpec A(DequeEnd::Tail, DequeEnd::Head);
  WsqSpec B(DequeEnd::Tail, DequeEnd::Head);
  EXPECT_EQ(A.hash(), B.hash());
  A.apply(op("put", {1}, 0, 0, 1, 2));
  EXPECT_NE(A.hash(), B.hash());
}

//===----------------------------------------------------------------------===//
// Linearizability / SC checkers
//===----------------------------------------------------------------------===//

TEST(CheckerTest, SequentialHistoryIsLinearizable) {
  History H;
  H.Ops = {op("put", {1}, 0, 0, 1, 2), op("take", {}, 1, 0, 3, 4)};
  EXPECT_TRUE(isLinearizable(H, WsqSpec::factory()));
  EXPECT_TRUE(isSequentiallyConsistent(H, WsqSpec::factory()));
}

TEST(CheckerTest, EmptyHistoryOk) {
  History H;
  EXPECT_TRUE(isLinearizable(H, WsqSpec::factory()));
  EXPECT_TRUE(isSequentiallyConsistent(H, WsqSpec::factory()));
}

TEST(CheckerTest, OverlappingOpsMayReorder) {
  // take overlaps put: the EMPTY return is fine (take linearizes first).
  History H;
  H.Ops = {op("put", {1}, 0, 0, 1, 4),
           op("take", {}, EmptyVal, 1, 2, 3)};
  EXPECT_TRUE(isLinearizable(H, WsqSpec::factory()));
}

TEST(CheckerTest, RealTimeOrderEnforcedByLinearizability) {
  // The paper's Fig. 2c: put(1) completes strictly before steal, yet the
  // steal misses the element. SC accepts (per-thread reordering), but
  // linearizability must reject.
  History H;
  H.Ops = {op("put", {1}, 0, 0, 1, 2),
           op("steal", {}, EmptyVal, 1, 3, 4)};
  EXPECT_FALSE(isLinearizable(H, WsqSpec::factory()));
  EXPECT_TRUE(isSequentiallyConsistent(H, WsqSpec::factory()));
}

TEST(CheckerTest, ScStillRequiresPerThreadOrder) {
  // Same thread: put(1) then steal() = EMPTY is wrong even under SC.
  History H;
  H.Ops = {op("put", {1}, 0, 0, 1, 2),
           op("steal", {}, EmptyVal, 0, 3, 4)};
  EXPECT_FALSE(isSequentiallyConsistent(H, WsqSpec::factory()));
}

TEST(CheckerTest, DuplicateExtractionRejected) {
  // Fig. 2a: the same element returned twice.
  History H;
  H.Ops = {op("put", {1}, 0, 0, 1, 2), op("take", {}, 1, 0, 3, 6),
           op("steal", {}, 1, 1, 4, 5)};
  EXPECT_FALSE(isLinearizable(H, WsqSpec::factory()));
  EXPECT_FALSE(isSequentiallyConsistent(H, WsqSpec::factory()));
}

TEST(CheckerTest, GarbageValueRejected) {
  // Fig. 2b: a value that was never put (uninitialized read).
  History H;
  H.Ops = {op("put", {1}, 0, 0, 1, 2), op("steal", {}, 0, 1, 3, 4)};
  EXPECT_FALSE(isSequentiallyConsistent(H, WsqSpec::factory()));
}

TEST(CheckerTest, ConcurrentQueueInterleavings) {
  // Two producers, values may interleave either way.
  History H;
  H.Ops = {op("enqueue", {1}, 0, 0, 1, 4), op("enqueue", {2}, 0, 1, 2, 3),
           op("dequeue", {}, 2, 0, 5, 6), op("dequeue", {}, 1, 1, 7, 8)};
  EXPECT_TRUE(isLinearizable(H, QueueSpec::factory()));
}

TEST(CheckerTest, QueueFifoViolationCaught) {
  // enqueue(1) strictly before enqueue(2), dequeues in wrong order:
  // linearizability rejects. SC accepts — the enqueues are in different
  // threads, so nothing orders them under SC.
  History H;
  H.Ops = {op("enqueue", {1}, 0, 0, 1, 2), op("enqueue", {2}, 0, 1, 3, 4),
           op("dequeue", {}, 2, 0, 5, 6), op("dequeue", {}, 1, 1, 7, 8)};
  EXPECT_FALSE(isLinearizable(H, QueueSpec::factory()));
  EXPECT_TRUE(isSequentiallyConsistent(H, QueueSpec::factory()));
}

TEST(CheckerTest, QueueFifoViolationCaughtUnderScSameThread) {
  // Same shape but the enqueues share a thread: now SC rejects too.
  History H;
  H.Ops = {op("enqueue", {1}, 0, 0, 1, 2), op("enqueue", {2}, 0, 0, 3, 4),
           op("dequeue", {}, 2, 1, 5, 6), op("dequeue", {}, 1, 1, 7, 8)};
  EXPECT_FALSE(isLinearizable(H, QueueSpec::factory()));
  EXPECT_FALSE(isSequentiallyConsistent(H, QueueSpec::factory()));
}

TEST(CheckerTest, ScAllowsCrossThreadReorderingQueue) {
  // Same shape, but under SC the two enqueues are in different threads
  // with no program-order constraint, so dequeue order 2,1 is fine.
  History H;
  H.Ops = {op("enqueue", {1}, 0, 0, 1, 2), op("enqueue", {2}, 0, 1, 3, 4),
           op("dequeue", {}, 2, 2, 5, 6), op("dequeue", {}, 1, 3, 7, 8)};
  EXPECT_TRUE(isSequentiallyConsistent(H, QueueSpec::factory()));
  EXPECT_FALSE(isLinearizable(H, QueueSpec::factory()));
}

TEST(CheckerTest, NoGarbageTasks) {
  History Good;
  Good.Ops = {op("put", {5}, 0, 0, 1, 2), op("steal", {}, 5, 1, 3, 4),
              op("take", {}, 5, 0, 5, 6), // duplicate: allowed
              op("steal", {}, EmptyVal, 1, 7, 8)};
  EXPECT_EQ(checkNoGarbageTasks(Good), "");

  History Bad;
  Bad.Ops = {op("put", {5}, 0, 0, 1, 2), op("steal", {}, 0, 1, 3, 4)};
  EXPECT_NE(checkNoGarbageTasks(Bad), "");
}

TEST(CheckerTest, LargerHistoriesTerminate) {
  // 16 ops across 4 threads; stress the memoized search.
  History H;
  uint64_t T = 1;
  for (int I = 0; I < 8; ++I) {
    uint64_t Inv = T++;
    uint64_t Res = T++;
    H.Ops.push_back(
        op("enqueue", {static_cast<Word>(I + 1)}, 0, 0, Inv, Res));
  }
  for (int I = 0; I < 8; ++I) {
    uint64_t Inv = T++;
    uint64_t Res = T++;
    H.Ops.push_back(
        op("dequeue", {}, static_cast<Word>(I + 1), 1, Inv, Res));
  }
  EXPECT_TRUE(isLinearizable(H, QueueSpec::factory()));
}
