//===- ExecPoolTest.cpp - Worker pool & round runner tests ----------------===//
//
// The pool's contract is prefix semantics: runOrdered executes exactly
// the indices [0, Cut) — each exactly once — and cancellation via the
// stop predicate never punches holes in that prefix. The round runner on
// top must produce per-slot results identical to running the same plan
// sequentially.
//
//===----------------------------------------------------------------------===//

#include "exec/ExecPool.h"
#include "exec/RoundRunner.h"
#include "frontend/Compiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

using namespace dfence;
using namespace dfence::exec;

TEST(ExecPoolTest, ResolveJobsZeroMeansHardware) {
  EXPECT_GE(resolveJobs(0), 1u);
  EXPECT_EQ(resolveJobs(1), 1u);
  EXPECT_EQ(resolveJobs(7), 7u);
}

TEST(ExecPoolTest, SingleJobSpawnsNoThreadsAndRunsAll) {
  ExecPool Pool(1);
  EXPECT_EQ(Pool.jobs(), 1u);
  std::vector<int> Hits(50, 0);
  size_t Cut = Pool.runOrdered(Hits.size(),
                               [&](size_t I) { ++Hits[I]; });
  EXPECT_EQ(Cut, 50u);
  for (int H : Hits)
    EXPECT_EQ(H, 1);
}

TEST(ExecPoolTest, RunsEveryIndexExactlyOnce) {
  ExecPool Pool(4);
  EXPECT_EQ(Pool.jobs(), 4u);
  std::vector<std::atomic<int>> Hits(200);
  size_t Cut =
      Pool.runOrdered(Hits.size(), [&](size_t I) { ++Hits[I]; });
  EXPECT_EQ(Cut, 200u);
  for (const std::atomic<int> &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ExecPoolTest, ZeroCountReturnsZero) {
  ExecPool Pool(3);
  size_t Cut = Pool.runOrdered(0, [&](size_t) { FAIL(); });
  EXPECT_EQ(Cut, 0u);
}

TEST(ExecPoolTest, PoolIsReusableAcrossBatches) {
  ExecPool Pool(4);
  for (int Round = 0; Round != 5; ++Round) {
    std::atomic<size_t> Done{0};
    size_t Cut = Pool.runOrdered(64, [&](size_t) { ++Done; });
    EXPECT_EQ(Cut, 64u);
    EXPECT_EQ(Done.load(), 64u);
  }
}

TEST(ExecPoolTest, CancellationTruncatesToExecutedPrefix) {
  ExecPool Pool(4);
  std::vector<std::atomic<int>> Hits(10000);
  std::atomic<size_t> Done{0};
  size_t Cut = Pool.runOrdered(
      Hits.size(),
      [&](size_t I) {
        ++Hits[I];
        ++Done;
      },
      [&] { return Done.load() >= 25; });
  // The stop fired well before the end; claimed slots still finished.
  EXPECT_LT(Cut, Hits.size());
  EXPECT_GE(Cut, 25u);
  // Prefix semantics: exactly [0, Cut) ran, each exactly once.
  for (size_t I = 0; I != Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), I < Cut ? 1 : 0) << "index " << I;
}

TEST(ExecPoolTest, ImmediateStopRunsNothing) {
  ExecPool Pool(4);
  size_t Cut = Pool.runOrdered(
      100, [&](size_t) { FAIL(); }, [] { return true; });
  EXPECT_EQ(Cut, 0u);
}

namespace {

// Two racing increments on a shared counter: enough scheduling freedom
// that different seeds produce different step counts, which the round
// runner must report per slot, in slot order.
const char *CounterSrc = R"(
global int C = 0;
int bump() {
  int v = C;
  C = v + 1;
  return v;
}
)";

vm::Client bumpClient() {
  vm::Client C;
  vm::MethodCall MB;
  MB.Func = "bump";
  vm::ThreadScript A, B;
  A.Calls = {MB, MB};
  B.Calls = {MB};
  C.Threads = {A, B};
  return C;
}

RoundPlan smallPlan(size_t K) {
  RoundPlan Plan;
  Plan.Slots.resize(K);
  for (size_t I = 0; I != K; ++I) {
    vm::ExecConfig &EC = Plan.Slots[I].EC;
    EC.Model = vm::MemModel::PSO;
    EC.Seed = 1000 + I;
    EC.MaxSteps = 20000;
    EC.FlushProb = 0.4;
    Plan.Slots[I].ClientIdx = 0;
  }
  return Plan;
}

} // namespace

TEST(RoundRunnerTest, ParallelSlotsMatchSequentialRun) {
  auto CR = frontend::compileMiniC(CounterSrc);
  ASSERT_TRUE(CR.Ok) << CR.Error;
  std::vector<vm::Client> Clients{bumpClient()};
  RoundPlan Plan = smallPlan(40);
  harness::ExecPolicy Policy;

  ViolationCheck Check = [](const vm::ExecResult &R) {
    return R.Out == vm::Outcome::Completed ? std::string()
                                           : R.Message;
  };

  vm::PreparedProgram Prog(CR.Module, Clients);
  ExecPool Seq(1), Par(4);
  RoundResult A = runRound(Seq.slice(0), Prog, Plan, Policy, Check);
  RoundResult B = runRound(Par.slice(0), Prog, Plan, Policy, Check);
  ASSERT_EQ(A.Ran, Plan.Slots.size());
  ASSERT_EQ(B.Ran, Plan.Slots.size());
  for (size_t I = 0; I != Plan.Slots.size(); ++I) {
    const vm::ExecResult &RA = A.Slots[I].SE.Result;
    const vm::ExecResult &RB = B.Slots[I].SE.Result;
    EXPECT_EQ(RA.Out, RB.Out) << "slot " << I;
    EXPECT_EQ(RA.Steps, RB.Steps) << "slot " << I;
    EXPECT_EQ(RA.Hist.str(), RB.Hist.str()) << "slot " << I;
    EXPECT_EQ(A.Slots[I].Violation, B.Slots[I].Violation) << "slot " << I;
  }
}

TEST(RoundRunnerTest, StopPredicateCancelsPendingSlots) {
  auto CR = frontend::compileMiniC(CounterSrc);
  ASSERT_TRUE(CR.Ok) << CR.Error;
  std::vector<vm::Client> Clients{bumpClient()};
  RoundPlan Plan = smallPlan(500);
  harness::ExecPolicy Policy;

  vm::PreparedProgram Prog(CR.Module, Clients);
  ExecPool Pool(4);
  std::atomic<size_t> Started{0};
  RoundResult RR = runRound(
      Pool.slice(0), Prog, Plan, Policy,
      [&](const vm::ExecResult &) {
        ++Started;
        return std::string();
      },
      [&] { return Started.load() >= 10; });
  EXPECT_LT(RR.Ran, Plan.Slots.size());
  EXPECT_GE(RR.Ran, 10u);
  // The executed prefix carries results; the cancelled tail does not.
  for (size_t I = 0; I != RR.Ran; ++I)
    EXPECT_EQ(RR.Slots[I].SE.Result.Out, vm::Outcome::Completed);
  for (size_t I = RR.Ran; I != RR.Slots.size(); ++I)
    EXPECT_EQ(RR.Slots[I].SE.Result.Steps, 0u);
}
