//===- HarnessTest.cpp - Resilient harness & crash-repro tests ------------===//
//
// Covers the robustness layer end to end: watchdog timeouts, retry
// escalation, fault injection (flush storms, forced switches, allocation
// failure), and the crash-repro bundle round trip — a recorded violating
// execution must replay with the identical outcome, message, and history.
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "harness/Harness.h"
#include "harness/ReproBundle.h"
#include "sched/ReplayScheduler.h"
#include "synth/Synthesizer.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace dfence;
using namespace dfence::harness;

namespace {

// Message-passing publication: misbehaves under PSO (reader dereferences
// a pointer whose publication overtook its initialization).
const char *PublishSrc = R"(
global int FLAG = 0;
global int PTR = 0;
int writer() {
  int p = malloc(2);
  *p = 5;
  PTR = p;
  FLAG = 1;
  return 0;
}
int reader() {
  int f = FLAG;
  if (f == 1) {
    int p = PTR;
    return *p;
  }
  return 0;
}
)";

// Never terminates: exercises step limits and the wall-clock watchdog.
const char *SpinSrc = R"(
global int X = 0;
int spin() {
  int i = 1;
  while (i == 1) {
    X = i;
  }
  return 0;
}
)";

vm::Client publishClient() {
  vm::Client C;
  vm::ThreadScript W, R;
  vm::MethodCall MW;
  MW.Func = "writer";
  vm::MethodCall MR;
  MR.Func = "reader";
  W.Calls = {MW};
  R.Calls = {MR, MR};
  C.Threads = {W, R};
  return C;
}

vm::Client oneCall(const std::string &Func, unsigned Times = 1) {
  vm::Client C;
  vm::ThreadScript S;
  vm::MethodCall MC;
  MC.Func = Func;
  for (unsigned I = 0; I != Times; ++I)
    S.Calls.push_back(MC);
  C.Threads = {S};
  return C;
}

/// Runs publication under PSO until a seed produces a memory-safety
/// violation, with trace recording on. Returns the violating seed.
uint64_t findViolatingSeed(const ir::Module &M, const vm::Client &C,
                           vm::ExecConfig &EC, vm::ExecResult &R) {
  EC.Model = vm::MemModel::PSO;
  EC.FlushProb = 0.4;
  EC.RecordTrace = true;
  for (uint64_t Seed = 1; Seed <= 20000; ++Seed) {
    EC.Seed = Seed;
    R = vm::runExecution(M, C, EC);
    if (R.Out == vm::Outcome::MemSafety)
      return Seed;
  }
  return 0;
}

} // namespace

//===----------------------------------------------------------------------===//
// Crash-repro bundles
//===----------------------------------------------------------------------===//

TEST(HarnessTest, RecordedViolationReplaysIdentically) {
  auto M = frontend::compileOrDie(PublishSrc);
  vm::Client C = publishClient();
  vm::ExecConfig EC;
  vm::ExecResult R;
  ASSERT_NE(findViolatingSeed(M, C, EC, R), 0u)
      << "publication must misbehave under PSO within the seed budget";

  ReproBundle B = makeBundle(M, C, EC, R);
  EXPECT_EQ(B.Outcome, "memory-safety");
  EXPECT_FALSE(B.Trace.empty());

  std::string Error;
  auto Replayed = replayBundle(B, Error);
  ASSERT_TRUE(Replayed) << Error;
  EXPECT_EQ(Replayed->Out, R.Out);
  EXPECT_EQ(Replayed->Message, R.Message);
  EXPECT_EQ(Replayed->Hist.str(), R.Hist.str());
}

TEST(HarnessTest, BundleSurvivesJsonRoundTrip) {
  auto M = frontend::compileOrDie(PublishSrc);
  vm::Client C = publishClient();
  vm::ExecConfig EC;
  vm::ExecResult R;
  ASSERT_NE(findViolatingSeed(M, C, EC, R), 0u);
  ReproBundle B = makeBundle(M, C, EC, R);
  B.SpecName = "memory-safety";
  B.Faults.FlushStormProb = 0.25;
  B.Faults.SwitchBeforeLabels = {3, 7};
  B.Faults.AllocFailAfter = 9;

  std::string Error;
  auto Parsed = Json::parse(B.toJson().dump(2), Error);
  ASSERT_TRUE(Parsed) << Error;
  auto B2 = ReproBundle::fromJson(*Parsed, Error);
  ASSERT_TRUE(B2) << Error;
  EXPECT_EQ(B2->ModuleText, B.ModuleText);
  EXPECT_EQ(B2->Model, B.Model);
  EXPECT_EQ(B2->Seed, B.Seed);
  EXPECT_EQ(B2->FlushProb, B.FlushProb);
  EXPECT_EQ(B2->MaxSteps, B.MaxSteps);
  EXPECT_EQ(B2->Outcome, B.Outcome);
  EXPECT_EQ(B2->Message, B.Message);
  EXPECT_EQ(B2->SpecName, B.SpecName);
  EXPECT_EQ(B2->Faults.FlushStormProb, B.Faults.FlushStormProb);
  EXPECT_EQ(B2->Faults.SwitchBeforeLabels, B.Faults.SwitchBeforeLabels);
  EXPECT_EQ(B2->Faults.AllocFailAfter, B.Faults.AllocFailAfter);
  ASSERT_EQ(B2->Trace.size(), B.Trace.size());
  for (size_t I = 0; I != B.Trace.size(); ++I) {
    EXPECT_EQ(B2->Trace[I].Kind, B.Trace[I].Kind);
    EXPECT_EQ(B2->Trace[I].Tid, B.Trace[I].Tid);
    EXPECT_EQ(B2->Trace[I].HasVar, B.Trace[I].HasVar);
  }
  EXPECT_EQ(B2->Client.Threads.size(), B.Client.Threads.size());
}

TEST(HarnessTest, BundleSurvivesFileRoundTripAndReplays) {
  auto M = frontend::compileOrDie(PublishSrc);
  vm::Client C = publishClient();
  vm::ExecConfig EC;
  vm::ExecResult R;
  ASSERT_NE(findViolatingSeed(M, C, EC, R), 0u);
  ReproBundle B = makeBundle(M, C, EC, R);

  std::string Path = testing::TempDir() + "harness_bundle_test.json";
  std::string Error;
  ASSERT_TRUE(B.saveFile(Path, Error)) << Error;
  auto Loaded = ReproBundle::loadFile(Path, Error);
  std::remove(Path.c_str());
  ASSERT_TRUE(Loaded) << Error;

  auto Replayed = replayBundle(*Loaded, Error);
  ASSERT_TRUE(Replayed) << Error;
  EXPECT_EQ(Replayed->Out, R.Out);
  EXPECT_EQ(Replayed->Message, R.Message);
}

TEST(HarnessTest, LoadFileRejectsGarbage) {
  std::string Path = testing::TempDir() + "harness_garbage_test.json";
  {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    ASSERT_NE(F, nullptr);
    std::fputs("{\"version\": 1, \"model\": \"XXX\"}", F);
    std::fclose(F);
  }
  std::string Error;
  auto B = ReproBundle::loadFile(Path, Error);
  std::remove(Path.c_str());
  EXPECT_FALSE(B);
  EXPECT_FALSE(Error.empty());
}

TEST(HarnessTest, LenientReplayFinishesTruncatedTrace) {
  auto M = frontend::compileOrDie(PublishSrc);
  vm::Client C = publishClient();
  vm::ExecConfig EC;
  vm::ExecResult R;
  ASSERT_NE(findViolatingSeed(M, C, EC, R), 0u);
  ReproBundle B = makeBundle(M, C, EC, R);
  ASSERT_GT(B.Trace.size(), 2u);
  B.Trace.resize(B.Trace.size() / 2); // Hand-truncated bundle.

  std::string Error;
  auto Replayed = replayBundle(B, Error);
  // Must terminate gracefully with *some* outcome — never crash or hang.
  ASSERT_TRUE(Replayed) << Error;
}

//===----------------------------------------------------------------------===//
// Watchdog and retry escalation
//===----------------------------------------------------------------------===//

TEST(HarnessTest, RetryGrowsStepBudgetUntilCompletion) {
  auto M = frontend::compileOrDie(PublishSrc);
  vm::Client C = oneCall("writer");
  vm::ExecConfig EC;
  EC.Model = vm::MemModel::SC;
  EC.MaxSteps = 1; // Hopelessly tight: the first attempt must discard.
  ExecPolicy Policy;
  Policy.MaxRetries = 3;
  Policy.StepBudgetGrowth = 100.0;

  SupervisedExec SE = runSupervised(M, C, EC, Policy);
  EXPECT_FALSE(SE.Discarded);
  EXPECT_EQ(SE.Result.Out, vm::Outcome::Completed);
  EXPECT_GT(SE.Attempts, 1u);
  EXPECT_GT(SE.UsedMaxSteps, EC.MaxSteps);
  EXPECT_NE(SE.UsedSeed, EC.Seed) << "retries must reseed the schedule";
}

TEST(HarnessTest, RetryExhaustionCountsAsDiscarded) {
  auto M = frontend::compileOrDie(SpinSrc);
  vm::Client C = oneCall("spin");
  vm::ExecConfig EC;
  EC.Model = vm::MemModel::SC;
  EC.MaxSteps = 200;
  ExecPolicy Policy;
  Policy.MaxRetries = 2;
  Policy.StepBudgetGrowth = 1.0; // No growth: the spin never finishes.

  SupervisedExec SE = runSupervised(M, C, EC, Policy);
  EXPECT_TRUE(SE.Discarded);
  EXPECT_EQ(SE.Attempts, Policy.MaxRetries + 1);
  EXPECT_EQ(SE.Result.Out, vm::Outcome::StepLimit);
}

TEST(HarnessTest, WatchdogTimesOutRunawayExecution) {
  auto M = frontend::compileOrDie(SpinSrc);
  vm::Client C = oneCall("spin");
  vm::ExecConfig EC;
  EC.Model = vm::MemModel::SC;
  EC.MaxSteps = size_t(1) << 40; // Step budget effectively unlimited.
  ExecPolicy Policy;
  Policy.ExecWallMs = 50;
  Policy.MaxRetries = 1;
  Policy.StepBudgetGrowth = 1.0;

  Stopwatch W;
  SupervisedExec SE = runSupervised(M, C, EC, Policy);
  EXPECT_TRUE(SE.TimedOut);
  EXPECT_TRUE(SE.Discarded);
  EXPECT_EQ(SE.Result.Out, vm::Outcome::Timeout);
  EXPECT_LT(W.elapsedMs(), 5000u)
      << "two 50 ms watchdog attempts must not take seconds";
}

TEST(HarnessTest, SupervisorAccountsAndCapturesBundles) {
  auto M = frontend::compileOrDie(PublishSrc);
  vm::Client C = publishClient();
  Supervisor Sup;
  Sup.enableBundleCapture(2);
  Sup.setSpecInfo("memory-safety", "");

  unsigned Violations = 0;
  for (uint64_t Seed = 1; Seed <= 3000 && Violations == 0; ++Seed) {
    vm::ExecConfig EC;
    EC.Model = vm::MemModel::PSO;
    EC.Seed = Seed;
    EC.FlushProb = 0.4;
    SupervisedExec SE = Sup.run(M, C, EC);
    if (SE.Result.Out == vm::Outcome::MemSafety)
      ++Violations;
  }
  ASSERT_GT(Violations, 0u);
  ASSERT_FALSE(Sup.bundles().empty())
      << "the supervisor must capture VM-level violations on its own";
  const ReproBundle &B = Sup.bundles().front();
  EXPECT_EQ(B.SpecName, "memory-safety");
  std::string Error;
  auto Replayed = replayBundle(B, Error);
  ASSERT_TRUE(Replayed) << Error;
  EXPECT_EQ(vm::outcomeName(Replayed->Out), B.Outcome);
  EXPECT_EQ(Replayed->Message, B.Message);
  EXPECT_GT(Sup.stats().Executions, 0u);
}

//===----------------------------------------------------------------------===//
// Fault injection
//===----------------------------------------------------------------------===//

TEST(HarnessTest, AllocationFaultReplaysIdentically) {
  auto M = frontend::compileOrDie(PublishSrc);
  vm::Client C = oneCall("writer");
  vm::FaultPlan Faults;
  Faults.AllocFailProb = 1.0; // Every allocation fails.
  vm::ExecConfig EC;
  EC.Model = vm::MemModel::SC;
  EC.Seed = 7;
  EC.RecordTrace = true;
  EC.Faults = &Faults;

  vm::ExecResult R = vm::runExecution(M, C, EC);
  ASSERT_EQ(R.Out, vm::Outcome::MemSafety)
      << "a failed malloc makes the writer store through null";

  // Engine-level faults re-fire on replay from the dedicated fault RNG;
  // the bundle carries the plan and the replay view keeps it.
  ReproBundle B = makeBundle(M, C, EC, R);
  std::string Error;
  auto Replayed = replayBundle(B, Error);
  ASSERT_TRUE(Replayed) << Error;
  EXPECT_EQ(Replayed->Out, R.Out);
  EXPECT_EQ(Replayed->Message, R.Message);
}

TEST(HarnessTest, FlushStormIsBakedIntoReplayTrace) {
  auto M = frontend::compileOrDie(PublishSrc);
  vm::Client C = publishClient();
  vm::FaultPlan Faults;
  Faults.FlushStormProb = 0.3;
  vm::ExecConfig EC;
  EC.Model = vm::MemModel::PSO;
  EC.FlushProb = 0.2;
  EC.RecordTrace = true;
  EC.Faults = &Faults;

  // Any outcome works; the invariant is that replaying the recorded
  // trace (with scheduler-level faults stripped) reproduces it exactly.
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    EC.Seed = Seed;
    vm::ExecResult R = vm::runExecution(M, C, EC);
    ReproBundle B = makeBundle(M, C, EC, R);
    EXPECT_EQ(B.Faults.replayView().FlushStormProb, 0.0)
        << "scheduler-level faults are stripped for replay";
    std::string Error;
    auto Replayed = replayBundle(B, Error);
    ASSERT_TRUE(Replayed) << Error;
    EXPECT_EQ(Replayed->Out, R.Out) << "seed " << Seed;
    EXPECT_EQ(Replayed->Hist.str(), R.Hist.str()) << "seed " << Seed;
  }
}

TEST(HarnessTest, ForcedSwitchFaultKeepsExecutionsTerminating) {
  auto M = frontend::compileOrDie(PublishSrc);
  vm::Client C = publishClient();
  // Mark every store in the writer as a forced-switch point.
  vm::FaultPlan Faults;
  for (const auto &I : M.function(*M.findFunction("writer")).Body)
    if (I.Op == ir::Opcode::Store)
      Faults.SwitchBeforeLabels.push_back(I.Id);
  ASSERT_FALSE(Faults.SwitchBeforeLabels.empty());

  for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
    vm::ExecConfig EC;
    EC.Model = vm::MemModel::PSO;
    EC.Seed = Seed;
    EC.FlushProb = 0.3;
    EC.Faults = &Faults;
    vm::ExecResult R = vm::runExecution(M, C, EC);
    // The defer-once policy must not livelock: every run terminates
    // with a regular outcome well inside the step budget.
    EXPECT_NE(R.Out, vm::Outcome::StepLimit) << "seed " << Seed;
  }
}

TEST(HarnessTest, SynthesisUnderFaultInjectionNeverCrashes) {
  // The acceptance scenario: full synthesis with flush storms, forced
  // switches, and a tight buffer cap, under a 10-second total watchdog.
  // It must end Converged or Degraded — never crash, never hang.
  auto M = frontend::compileOrDie(PublishSrc);
  synth::SynthConfig Cfg;
  Cfg.Model = vm::MemModel::PSO;
  Cfg.Spec = synth::SpecKind::MemorySafety;
  Cfg.ExecsPerRound = 150;
  Cfg.MaxRounds = 12;
  Cfg.MaxRepairRounds = 12;
  Cfg.MaxStepsPerExec = 20000;
  Cfg.FlushProb = 0.4;
  Cfg.TotalWallMs = 10000;
  Cfg.Exec.ExecWallMs = 1000;
  Cfg.Faults.FlushStormProb = 0.05;
  Cfg.Faults.BufferCapacity = 2;
  for (const auto &I : M.function(*M.findFunction("writer")).Body)
    if (I.Op == ir::Opcode::Store)
      Cfg.Faults.SwitchBeforeLabels.push_back(I.Id);

  Stopwatch W;
  synth::SynthResult R = synth::synthesize(M, {publishClient()}, Cfg);
  EXPECT_LT(W.elapsedMs(), 60000u);
  EXPECT_TRUE(R.Status == synth::SynthStatus::Converged ||
              R.Status == synth::SynthStatus::Degraded)
      << "status: " << synth::synthStatusName(R.Status)
      << ", reason: " << R.DegradeReason;
  // Whatever the path, the result is a usable fenced module.
  EXPECT_GT(R.FencedModule.totalInstrCount(), 0u);
}
