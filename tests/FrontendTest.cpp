//===- FrontendTest.cpp - Lexer/parser/codegen tests ----------------------===//

#include "frontend/Compiler.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "ir/Verifier.h"
#include "vm/Interp.h"

#include <gtest/gtest.h>

using namespace dfence;
using namespace dfence::frontend;

namespace {

/// Compiles and runs Func(Args) sequentially, returning the result.
ir::Word evalMiniC(const std::string &Src, const std::string &Func,
                   std::vector<ir::Word> Args = {}) {
  CompileResult R = compileMiniC(Src);
  EXPECT_TRUE(R.Ok) << R.Error;
  return vm::runSequential(R.Module, Func, Args);
}

} // namespace

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(LexerTest, BasicTokens) {
  Lexer L("int x = 42; // comment\nwhile (x <= 7) { }");
  auto Toks = L.lexAll();
  ASSERT_FALSE(L.hadError());
  EXPECT_EQ(Toks[0].Kind, TokKind::KwInt);
  EXPECT_EQ(Toks[1].Kind, TokKind::Ident);
  EXPECT_EQ(Toks[1].Text, "x");
  EXPECT_EQ(Toks[2].Kind, TokKind::Assign);
  EXPECT_EQ(Toks[3].Kind, TokKind::Number);
  EXPECT_EQ(Toks[3].Value, 42);
  EXPECT_EQ(Toks[5].Kind, TokKind::KwWhile);
  EXPECT_EQ(Toks.back().Kind, TokKind::Eof);
}

TEST(LexerTest, TwoCharOperators) {
  Lexer L("== != <= >= && || -> << >>");
  auto Toks = L.lexAll();
  ASSERT_FALSE(L.hadError());
  EXPECT_EQ(Toks[0].Kind, TokKind::EqEq);
  EXPECT_EQ(Toks[1].Kind, TokKind::NotEq);
  EXPECT_EQ(Toks[2].Kind, TokKind::Le);
  EXPECT_EQ(Toks[3].Kind, TokKind::Ge);
  EXPECT_EQ(Toks[4].Kind, TokKind::AmpAmp);
  EXPECT_EQ(Toks[5].Kind, TokKind::PipePipe);
  EXPECT_EQ(Toks[6].Kind, TokKind::Arrow);
  EXPECT_EQ(Toks[7].Kind, TokKind::Shl);
  EXPECT_EQ(Toks[8].Kind, TokKind::Shr);
}

TEST(LexerTest, HexNumbersAndBlockComments) {
  Lexer L("/* multi\nline */ 0x10 0xff");
  auto Toks = L.lexAll();
  ASSERT_FALSE(L.hadError());
  EXPECT_EQ(Toks[0].Value, 16);
  EXPECT_EQ(Toks[1].Value, 255);
}

TEST(LexerTest, TracksLineNumbers) {
  Lexer L("a\nb\n  c");
  auto Toks = L.lexAll();
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[1].Loc.Line, 2u);
  EXPECT_EQ(Toks[2].Loc.Line, 3u);
  EXPECT_EQ(Toks[2].Loc.Col, 3u);
}

TEST(LexerTest, RejectsUnknownCharacter) {
  Lexer L("int $x;");
  L.lexAll();
  EXPECT_TRUE(L.hadError());
}

//===----------------------------------------------------------------------===//
// Parser errors
//===----------------------------------------------------------------------===//

TEST(ParserTest, ReportsMissingSemicolon) {
  CompileResult R = compileMiniC("int f() { return 1 }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("';'"), std::string::npos) << R.Error;
}

TEST(ParserTest, ReportsBadTopLevel) {
  CompileResult R = compileMiniC("return 1;");
  EXPECT_FALSE(R.Ok);
}

TEST(ParserTest, ReportsUnclosedBlock) {
  CompileResult R = compileMiniC("int f() { while (1) { }");
  EXPECT_FALSE(R.Ok);
}

//===----------------------------------------------------------------------===//
// Sema errors
//===----------------------------------------------------------------------===//

TEST(SemaTest, UnknownIdentifier) {
  CompileResult R = compileMiniC("int f() { return y; }");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("unknown identifier"), std::string::npos);
}

TEST(SemaTest, UnknownFunction) {
  CompileResult R = compileMiniC("int f() { return g(); }");
  EXPECT_FALSE(R.Ok);
}

TEST(SemaTest, ArityMismatch) {
  CompileResult R =
      compileMiniC("int g(int a) { return a; } int f() { return g(); }");
  EXPECT_FALSE(R.Ok);
}

TEST(SemaTest, AddressOfLocalRejected) {
  CompileResult R = compileMiniC("int f() { int x = 1; return cas(&x, 1, 2); }");
  EXPECT_FALSE(R.Ok);
}

TEST(SemaTest, BreakOutsideLoop) {
  CompileResult R = compileMiniC("int f() { break; return 0; }");
  EXPECT_FALSE(R.Ok);
}

TEST(SemaTest, DuplicateFieldAcrossStructs) {
  CompileResult R = compileMiniC(
      "struct A { int k; } struct B { int k; } int f() { return 0; }");
  EXPECT_FALSE(R.Ok);
}

//===----------------------------------------------------------------------===//
// End-to-end semantics (compile + run sequentially)
//===----------------------------------------------------------------------===//

TEST(CodeGenTest, Arithmetic) {
  EXPECT_EQ(evalMiniC("int f() { return 2 + 3 * 4; }", "f"), 14u);
  EXPECT_EQ(evalMiniC("int f() { return (2 + 3) * 4; }", "f"), 20u);
  EXPECT_EQ(evalMiniC("int f() { return 17 % 5; }", "f"), 2u);
  EXPECT_EQ(evalMiniC("int f() { return 1 << 4; }", "f"), 16u);
  EXPECT_EQ(static_cast<int64_t>(evalMiniC("int f() { return -7; }", "f")),
            -7);
}

TEST(CodeGenTest, Comparisons) {
  EXPECT_EQ(evalMiniC("int f() { return 0 - 1 < 0; }", "f"), 1u);
  EXPECT_EQ(evalMiniC("int f() { return 3 >= 3; }", "f"), 1u);
  EXPECT_EQ(evalMiniC("int f() { return 3 != 3; }", "f"), 0u);
}

TEST(CodeGenTest, LocalsAndAssignment) {
  EXPECT_EQ(evalMiniC("int f() { int x = 1; x = x + 5; return x; }", "f"),
            6u);
  EXPECT_EQ(evalMiniC("int f() { int x; return x; }", "f"), 0u)
      << "locals are zero-initialized";
}

TEST(CodeGenTest, GlobalsAndArrays) {
  const char *Src = R"(
global int G = 7;
global int arr[8];
int f() {
  arr[2] = G + 1;
  G = arr[2] * 2;
  return G;
}
)";
  EXPECT_EQ(evalMiniC(Src, "f"), 16u);
}

TEST(CodeGenTest, WhileLoopAndBreakContinue) {
  const char *Src = R"(
int f() {
  int sum = 0;
  int i = 0;
  while (1) {
    i = i + 1;
    if (i > 10) { break; }
    if (i % 2 == 0) { continue; }
    sum = sum + i;
  }
  return sum;
}
)";
  EXPECT_EQ(evalMiniC(Src, "f"), 25u); // 1+3+5+7+9
}

TEST(CodeGenTest, IfElseChains) {
  const char *Src = R"(
int classify(int v) {
  if (v < 0) {
    return 0 - 1;
  } else if (v == 0) {
    return 0;
  } else {
    return 1;
  }
}
)";
  EXPECT_EQ(static_cast<int64_t>(
                evalMiniC(Src, "classify", {static_cast<ir::Word>(-5)})),
            -1);
  EXPECT_EQ(evalMiniC(Src, "classify", {0}), 0u);
  EXPECT_EQ(evalMiniC(Src, "classify", {9}), 1u);
}

TEST(CodeGenTest, ShortCircuitEvaluation) {
  // RHS must not execute when LHS decides: guard a null dereference.
  const char *Src = R"(
global int P = 0;
int f() {
  if (P != 0 && *P == 5) {
    return 1;
  }
  return 0;
}
)";
  EXPECT_EQ(evalMiniC(Src, "f"), 0u);
}

TEST(CodeGenTest, ShortCircuitOr) {
  const char *Src = R"(
int f(int a, int b) { return a || b; }
)";
  EXPECT_EQ(evalMiniC(Src, "f", {0, 0}), 0u);
  EXPECT_EQ(evalMiniC(Src, "f", {2, 0}), 1u);
  EXPECT_EQ(evalMiniC(Src, "f", {0, 2}), 1u);
}

TEST(CodeGenTest, FunctionCallsAndRecursion) {
  const char *Src = R"(
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
)";
  EXPECT_EQ(evalMiniC(Src, "fib", {10}), 55u);
}

TEST(CodeGenTest, StructsAndMalloc) {
  const char *Src = R"(
struct Pair { int first; int second; }
int f() {
  int p = malloc(sizeof(Pair));
  p->first = 3;
  p->second = 4;
  int q = p->first * p->second;
  free(p);
  return q;
}
)";
  EXPECT_EQ(evalMiniC(Src, "f"), 12u);
}

TEST(CodeGenTest, PointerDerefAndAddressOf) {
  const char *Src = R"(
global int G = 5;
int f() {
  int p = &G;
  *p = *p + 1;
  return G;
}
)";
  EXPECT_EQ(evalMiniC(Src, "f"), 6u);
}

TEST(CodeGenTest, CasBuiltin) {
  const char *Src = R"(
global int X = 5;
int f() {
  int ok1 = cas(&X, 5, 7);
  int ok2 = cas(&X, 5, 9);
  return ok1 * 10 + ok2 + X;
}
)";
  EXPECT_EQ(evalMiniC(Src, "f"), 17u); // 10 + 0 + 7
}

TEST(CodeGenTest, ConstDeclarations) {
  const char *Src = R"(
const NEG = -3;
const POS = 10;
int f() { return POS + NEG; }
)";
  EXPECT_EQ(evalMiniC(Src, "f"), 7u);
}

TEST(CodeGenTest, SpawnJoin) {
  const char *Src = R"(
global int G = 0;
int worker(int v) {
  G = v;
  return 0;
}
int f() {
  int t = spawn(worker, 42);
  join(t);
  return G;
}
)";
  EXPECT_EQ(evalMiniC(Src, "f"), 42u);
}

TEST(CodeGenTest, LineNumbersAttached) {
  CompileResult R = compileMiniC("global int G = 0;\nint f() {\n  G = 1;\n  return G;\n}\n");
  ASSERT_TRUE(R.Ok);
  bool FoundStoreLine3 = false;
  for (const auto &I : R.Module.Funcs[0].Body)
    if (I.Op == ir::Opcode::Store && I.SrcLine == 3)
      FoundStoreLine3 = true;
  EXPECT_TRUE(FoundStoreLine3);
}

TEST(CodeGenTest, GeneratedModulesVerify) {
  CompileResult R = compileMiniC(R"(
global int a = 1;
struct S { int s1; int s2; }
int helper(int x) { return x * 2; }
int f() {
  int p = malloc(sizeof(S));
  p->s1 = helper(a);
  return p->s1;
}
)");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(ir::verifyModule(R.Module).empty());
}
