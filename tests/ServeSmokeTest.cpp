//===- ServeSmokeTest.cpp - end-to-end daemon smoke test ------------------===//
//
// Spawns the real `dfence serve` binary over pipes and walks the whole
// lifecycle the service contract promises: hello line on startup, inline
// ping, an accepted synthesis request answered with a canonical result,
// a request whose deadline expires answered with `timeout` (not a hang,
// not a dropped connection), and a SIGTERM that drains gracefully —
// every admitted request answered, exit code 0.
//
// This is the tier-1 gate for the serve subsystem (also run under the
// tsan preset; see CMakePresets.json / scripts/verify-all.cmake).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace dfence;

namespace {

const char *PubSource = R"(global int FLAG = 0;
global int PTR = 0;
int writer() {
  int p = malloc(2);
  *p = 5;
  PTR = p;
  FLAG = 1;
  return 0;
}
int reader() {
  int f = FLAG;
  if (f == 1) {
    int p = PTR;
    return *p;
  }
  return 0;
}
)";

/// A spawned daemon with pipes on stdin/stdout.
struct Daemon {
  pid_t Pid = -1;
  int In = -1;  ///< Write end: daemon's stdin.
  int Out = -1; ///< Read end: daemon's stdout.
  std::string Buf;

  bool start(std::vector<std::string> Args) {
    int ToChild[2], FromChild[2];
    if (::pipe(ToChild) != 0 || ::pipe(FromChild) != 0)
      return false;
    Pid = ::fork();
    if (Pid < 0)
      return false;
    if (Pid == 0) {
      ::dup2(ToChild[0], STDIN_FILENO);
      ::dup2(FromChild[1], STDOUT_FILENO);
      ::close(ToChild[0]);
      ::close(ToChild[1]);
      ::close(FromChild[0]);
      ::close(FromChild[1]);
      std::vector<char *> Argv;
      Argv.push_back(const_cast<char *>(DFENCE_BIN));
      Argv.push_back(const_cast<char *>("serve"));
      for (std::string &A : Args)
        Argv.push_back(A.data());
      Argv.push_back(nullptr);
      ::execv(DFENCE_BIN, Argv.data());
      _exit(127);
    }
    ::close(ToChild[0]);
    ::close(FromChild[1]);
    In = ToChild[1];
    Out = FromChild[0];
    return true;
  }

  void send(const std::string &Line) {
    std::string L = Line + "\n";
    size_t Off = 0;
    while (Off < L.size()) {
      ssize_t N = ::write(In, L.data() + Off, L.size() - Off);
      ASSERT_GT(N, 0) << "write to daemon failed";
      Off += static_cast<size_t>(N);
    }
  }

  /// Reads one line, waiting up to \p TimeoutMs. Empty on timeout/EOF.
  std::string readLine(int TimeoutMs = 60000) {
    for (;;) {
      size_t Nl = Buf.find('\n');
      if (Nl != std::string::npos) {
        std::string Line = Buf.substr(0, Nl);
        Buf.erase(0, Nl + 1);
        return Line;
      }
      pollfd P{Out, POLLIN, 0};
      int R = ::poll(&P, 1, TimeoutMs);
      if (R <= 0)
        return "";
      char Tmp[8192];
      ssize_t Got = ::read(Out, Tmp, sizeof(Tmp));
      if (Got <= 0)
        return "";
      Buf.append(Tmp, static_cast<size_t>(Got));
    }
  }

  /// SIGTERM + waitpid; returns the exit status (-1 on failure).
  int terminate() {
    if (Pid < 0)
      return -1;
    ::kill(Pid, SIGTERM);
    return wait();
  }

  int wait() {
    int Status = 0;
    if (::waitpid(Pid, &Status, 0) != Pid)
      return -1;
    Pid = -1;
    return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  }

  ~Daemon() {
    if (Pid > 0) {
      ::kill(Pid, SIGKILL);
      ::waitpid(Pid, nullptr, 0);
    }
    if (In >= 0)
      ::close(In);
    if (Out >= 0)
      ::close(Out);
  }
};

Json parseLine(const std::string &Line) {
  std::string Error;
  auto J = Json::parse(Line, Error);
  EXPECT_TRUE(J) << "bad JSON from daemon: " << Line << " (" << Error
                 << ")";
  return J ? *J : Json();
}

std::string synthRequest(const std::string &Id, const std::string &Extra) {
  return "{\"op\":\"synth\",\"id\":\"" + Id +
         "\",\"source\":" + Json::string(PubSource).dump() +
         ",\"client\":\"writer()|reader()\",\"spec\":\"safety\"" + Extra +
         "}";
}

TEST(ServeSmoke, FullLifecycleWithDeadlineAndGracefulDrain) {
  Daemon D;
  ASSERT_TRUE(D.start({"--jobs", "2", "--queue", "8"}));

  // Readiness: the hello line announces the protocol.
  Json Hello = parseLine(D.readLine());
  EXPECT_EQ(Hello.find("proto")->asString(), "dfence-serve-v1");

  // Three requests: a ping, a normal synthesis, and one whose deadline
  // is so tight it must time out rather than complete (or hang).
  D.send("{\"op\":\"ping\",\"id\":\"p1\"}");
  D.send(synthRequest("work", ",\"k\":60,\"rounds\":3"));
  D.send(synthRequest("hurry",
                      ",\"k\":20000,\"rounds\":16,\"deadlineMs\":50"));

  std::vector<Json> Resps;
  for (int I = 0; I != 3; ++I) {
    std::string Line = D.readLine();
    ASSERT_FALSE(Line.empty()) << "daemon stopped answering";
    Resps.push_back(parseLine(Line));
  }
  auto ById = [&](const std::string &Id) -> Json {
    for (const Json &J : Resps)
      if (const Json *I = J.find("id"); I && I->asString() == Id)
        return J;
    return Json();
  };

  Json Pong = ById("p1");
  ASSERT_FALSE(Pong.isNull());
  EXPECT_EQ(Pong.find("status")->asString(), "ok");
  EXPECT_TRUE(Pong.find("pong")->asBool(false));

  Json Work = ById("work");
  ASSERT_FALSE(Work.isNull());
  EXPECT_EQ(Work.find("status")->asString(), "ok");
  ASSERT_NE(Work.find("result"), nullptr);
  EXPECT_NE(Work.find("result")->find("rounds"), nullptr);
  // Canonical-result rule: cache stats live outside "result".
  EXPECT_EQ(Work.find("result")->dump().find("execHits"),
            std::string::npos);
  ASSERT_NE(Work.find("cache"), nullptr);

  Json Hurry = ById("hurry");
  ASSERT_FALSE(Hurry.isNull());
  EXPECT_EQ(Hurry.find("status")->asString(), "timeout");

  // Graceful drain: SIGTERM, no further admissions, clean exit 0.
  EXPECT_EQ(D.terminate(), 0);
}

TEST(ServeSmoke, StdinEofDrainsAdmittedWork) {
  Daemon D;
  ASSERT_TRUE(D.start({"--jobs", "2"}));
  EXPECT_EQ(parseLine(D.readLine()).find("proto")->asString(),
            "dfence-serve-v1");

  // Submit and immediately close stdin: the admitted request must still
  // be answered during the drain, then the daemon exits 0.
  D.send(synthRequest("tail", ",\"k\":40,\"rounds\":2"));
  ::close(D.In);
  D.In = -1;

  std::string Line = D.readLine();
  ASSERT_FALSE(Line.empty()) << "drain dropped an admitted request";
  Json R = parseLine(Line);
  EXPECT_EQ(R.find("id")->asString(), "tail");
  EXPECT_EQ(R.find("status")->asString(), "ok");
  EXPECT_EQ(D.wait(), 0);
}

} // namespace
