//===- CliObsSmokeTest.cpp - End-to-end CLI observability smoke -----------===//
//
// Drives the real `dfence` binary (path injected as DFENCE_BIN by CMake)
// on a Table 2 benchmark with --trace-out / --metrics-out and validates
// the artifacts: both files parse as JSON, the trace contains the
// round / slot / sat_solve span hierarchy, and the metrics counters are
// populated. Also pins down the CLI hardening contract: unknown flags
// exit 2 with a pointed message, and --help lists every observability
// flag. Runs as part of tier 1 so the end-to-end path cannot rot.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <sys/wait.h>

using namespace dfence;

#ifndef DFENCE_BIN
#error "DFENCE_BIN must be defined to the dfence executable path"
#endif

namespace {

/// Runs \p Cmd through the shell; returns the exit status (-1 on spawn
/// failure) and leaves combined stdout+stderr in \p Output.
int runCommand(const std::string &Cmd, std::string &Output) {
  Output.clear();
  FILE *P = popen((Cmd + " 2>&1").c_str(), "r");
  if (!P)
    return -1;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), P)) > 0)
    Output.append(Buf, N);
  int Status = pclose(P);
  if (Status == -1)
    return -1;
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

Json parseOrFail(const std::string &Text, const std::string &What) {
  std::string Error;
  std::optional<Json> J = Json::parse(Text, Error);
  EXPECT_TRUE(J.has_value()) << What << ": " << Error;
  return J ? *J : Json();
}

} // namespace

TEST(CliObsSmokeTest, TraceAndMetricsArtifactsAreValid) {
  const std::string MetricsPath = "cli_obs_metrics.json";
  const std::string TracePath = "cli_obs_trace.json";
  std::string Out;
  int Exit = runCommand(std::string(DFENCE_BIN) +
                            " bench \"Chase-Lev WSQ\" --model pso"
                            " --spec sc --k 100 --rounds 4 --jobs 2"
                            " --metrics-out " + MetricsPath +
                            " --trace-out " + TracePath,
                        Out);
  ASSERT_EQ(Exit, 0) << Out;
  EXPECT_NE(Out.find("metrics: " + MetricsPath), std::string::npos) << Out;
  EXPECT_NE(Out.find("trace: " + TracePath), std::string::npos) << Out;

  // The metrics artifact: schema + populated counters that add up.
  Json Metrics = parseOrFail(readFile(MetricsPath), MetricsPath);
  ASSERT_NE(Metrics.find("schema"), nullptr);
  EXPECT_EQ(Metrics.find("schema")->asString(), "dfence-metrics-v1");
  const Json *Counters = Metrics.find("counters");
  ASSERT_NE(Counters, nullptr);
  ASSERT_NE(Counters->find("synth_executions_total"), nullptr);
  EXPECT_GT(Counters->find("synth_executions_total")->asU64(), 0u);
  ASSERT_NE(Counters->find("synth_rounds_total"), nullptr);
  EXPECT_GT(Counters->find("synth_rounds_total")->asU64(), 0u);
  ASSERT_NE(Counters->find("vm_steps_total"), nullptr);
  EXPECT_GT(Counters->find("vm_steps_total")->asU64(), 0u);
  EXPECT_NE(Metrics.find("gauges"), nullptr);
  EXPECT_NE(Metrics.find("histograms"), nullptr);

  // The trace artifact: Chrome trace-event JSON with the span hierarchy.
  Json Trace = parseOrFail(readFile(TracePath), TracePath);
  const Json *Events = Trace.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  std::set<std::string> Names;
  for (const Json &E : Events->items())
    Names.insert(E.find("name")->asString());
  EXPECT_TRUE(Names.count("synthesize")) << "missing synthesize span";
  EXPECT_TRUE(Names.count("round")) << "missing round spans";
  EXPECT_TRUE(Names.count("slot")) << "missing per-execution spans";
  // Chase-Lev under PSO/SC violates, so a repair (SAT solve + fence
  // enforcement) must appear in the trace.
  EXPECT_TRUE(Names.count("sat_solve")) << "missing sat_solve span";
  EXPECT_TRUE(Names.count("enforce")) << "missing enforce span";
  EXPECT_TRUE(Names.count("thread_name")) << "missing thread metadata";

  std::remove(MetricsPath.c_str());
  std::remove(TracePath.c_str());
}

TEST(CliObsSmokeTest, PrometheusExtensionSelectsTextFormat) {
  const std::string Path = "cli_obs_metrics.prom";
  std::string Out;
  int Exit = runCommand(std::string(DFENCE_BIN) +
                            " bench \"MSN Queue\" --model pso --spec sc"
                            " --k 50 --rounds 1 --metrics-out " + Path,
                        Out);
  ASSERT_EQ(Exit, 0) << Out;
  std::string Text = readFile(Path);
  EXPECT_NE(Text.find("# TYPE dfence_synth_executions_total counter"),
            std::string::npos)
      << Text.substr(0, 400);
  EXPECT_NE(Text.find("dfence_synth_executions_total 50"),
            std::string::npos);
  std::remove(Path.c_str());
}

TEST(CliObsSmokeTest, UnknownFlagExitsTwoWithPointedError) {
  std::string Out;
  int Exit = runCommand(std::string(DFENCE_BIN) +
                            " bench \"MSN Queue\" --bogus-flag 1",
                        Out);
  EXPECT_EQ(Exit, 2);
  EXPECT_NE(Out.find("unknown flag '--bogus-flag'"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("--help"), std::string::npos) << Out;
}

TEST(CliObsSmokeTest, MissingFlagValueExitsTwo) {
  std::string Out;
  int Exit = runCommand(std::string(DFENCE_BIN) +
                            " bench \"MSN Queue\" --metrics-out",
                        Out);
  EXPECT_EQ(Exit, 2);
  EXPECT_NE(Out.find("requires a value"), std::string::npos) << Out;
}

TEST(CliObsSmokeTest, HelpListsEveryObservabilityFlag) {
  std::string Out;
  int Exit = runCommand(std::string(DFENCE_BIN) + " --help", Out);
  EXPECT_EQ(Exit, 0);
  for (const char *Flag :
       {"--metrics-out", "--trace-out", "--log-level", "--log-json",
        "--jobs", "--repro", "--replay", "--k", "--rounds"})
    EXPECT_NE(Out.find(Flag), std::string::npos)
        << "help is missing " << Flag << "\n" << Out;
}

TEST(CliObsSmokeTest, InvalidLogLevelExitsTwo) {
  std::string Out;
  int Exit = runCommand(std::string(DFENCE_BIN) +
                            " bench \"MSN Queue\" --k 50 --rounds 1"
                            " --log-level loud",
                        Out);
  EXPECT_EQ(Exit, 2);
  EXPECT_NE(Out.find("log-level"), std::string::npos) << Out;
}

//===--- Flag-spelling contract: --key value and --key=value are -----------
//===--- interchangeable for every value flag, and boolean flags ----------
//===--- strictly reject an inline value with exit 2. ---------------------===//

TEST(CliObsSmokeTest, EqualsAndSpaceFlagSpellingsAgree) {
  // The same run spelled both ways must print identical results (the
  // parser normalizes the spelling before anything else sees it).
  std::string SpaceOut, EqOut;
  int SpaceExit = runCommand(std::string(DFENCE_BIN) +
                                 " bench \"MSN Queue\" --k 50"
                                 " --rounds 1 --jobs 2 --cache on",
                             SpaceOut);
  int EqExit = runCommand(std::string(DFENCE_BIN) +
                              " bench \"MSN Queue\" --k=50"
                              " --rounds=1 --jobs=2 --cache=on",
                          EqOut);
  EXPECT_EQ(SpaceExit, EqExit);
  EXPECT_EQ(SpaceOut, EqOut);
  EXPECT_NE(EqOut.find("result:"), std::string::npos) << EqOut;
}

TEST(CliObsSmokeTest, BooleanFlagRejectsInlineValue) {
  std::string Out;
  int Exit = runCommand(std::string(DFENCE_BIN) +
                            " bench \"MSN Queue\" --k 50 --rounds 1"
                            " --no-merge=1",
                        Out);
  EXPECT_EQ(Exit, 2);
  EXPECT_NE(Out.find("takes no value"), std::string::npos) << Out;
}

TEST(CliObsSmokeTest, ServeFlagsGoThroughTheSameParser) {
  // The serve command rides the same flag machinery: unknown flags and
  // missing values exit 2 before any daemon state is created.
  std::string Out;
  int Exit = runCommand(std::string(DFENCE_BIN) + " serve --bogus 1",
                        Out);
  EXPECT_EQ(Exit, 2);
  EXPECT_NE(Out.find("unknown flag '--bogus'"), std::string::npos)
      << Out;
  Exit = runCommand(std::string(DFENCE_BIN) + " serve --queue", Out);
  EXPECT_EQ(Exit, 2);
  EXPECT_NE(Out.find("requires a value"), std::string::npos) << Out;
  Exit =
      runCommand(std::string(DFENCE_BIN) + " serve --no-stdio=yes", Out);
  EXPECT_EQ(Exit, 2);
  EXPECT_NE(Out.find("takes no value"), std::string::npos) << Out;
  // Bad serve option values are caught before the server spins up.
  Exit = runCommand(std::string(DFENCE_BIN) + " serve --cache=maybe",
                    Out);
  EXPECT_EQ(Exit, 2);
  EXPECT_NE(Out.find("--cache"), std::string::npos) << Out;
}

TEST(CliObsSmokeTest, ContradictorySlotFlagsExitTwo) {
  // slots x jobs-per-slot must fit an explicit --jobs budget; a
  // contradiction is a hard error, not a silent re-partition.
  std::string Out;
  int Exit = runCommand(std::string(DFENCE_BIN) +
                            " serve --jobs 2 --slots 2 --jobs-per-slot 2",
                        Out);
  EXPECT_EQ(Exit, 2);
  EXPECT_NE(Out.find("exceeds"), std::string::npos) << Out;
  // Even without an explicit per-slot width: each slot needs at least
  // one worker from the budget.
  Exit = runCommand(std::string(DFENCE_BIN) + " serve --jobs 2 --slots 4",
                    Out);
  EXPECT_EQ(Exit, 2);
  EXPECT_NE(Out.find("exceeds"), std::string::npos) << Out;
  // Zero-width requests are nonsense.
  Exit = runCommand(std::string(DFENCE_BIN) + " serve --slots 0", Out);
  EXPECT_EQ(Exit, 2);
  EXPECT_NE(Out.find("--slots"), std::string::npos) << Out;
  Exit = runCommand(std::string(DFENCE_BIN) + " serve --jobs-per-slot 0",
                    Out);
  EXPECT_EQ(Exit, 2);
  EXPECT_NE(Out.find("--jobs-per-slot"), std::string::npos) << Out;
  // --slots belongs to serve alone; the strict per-command flag table
  // rejects it anywhere else.
  Exit = runCommand(std::string(DFENCE_BIN) +
                        " bench \"MSN Queue\" --k 50 --rounds 1 --slots 2",
                    Out);
  EXPECT_EQ(Exit, 2);
  EXPECT_NE(Out.find("unknown flag '--slots'"), std::string::npos) << Out;
}

//===--- Fuzz command: the strict parser covers its flags, bad values ------
//===--- exit 2 before any campaign state is created, and same-seed -------
//===--- runs are byte-identical at the CLI level. ------------------------===//

TEST(CliObsSmokeTest, FuzzFlagSpellingsAgreeAndRunsAreByteIdentical) {
  // Same campaign spelled --key value vs --key=value, run twice: all
  // four outputs must be identical bytes — the fuzz path prints no
  // wall-clock text, so same-seed determinism is visible at the shell.
  const std::string SpaceCmd = std::string(DFENCE_BIN) +
                               " fuzz --fuzz-seed 11 --count 6 --k 40"
                               " --rounds 3 --threads 2-3";
  const std::string EqCmd = std::string(DFENCE_BIN) +
                            " fuzz --fuzz-seed=11 --count=6 --k=40"
                            " --rounds=3 --threads=2-3";
  std::string A, B, C;
  ASSERT_EQ(runCommand(SpaceCmd, A), 0) << A;
  ASSERT_EQ(runCommand(SpaceCmd, B), 0) << B;
  ASSERT_EQ(runCommand(EqCmd, C), 0) << C;
  EXPECT_EQ(A, B) << "same-seed fuzz reruns must be byte-identical";
  EXPECT_EQ(A, C) << "flag spellings must not change the campaign";
  EXPECT_NE(A.find("distinct fingerprint"), std::string::npos) << A;
}

TEST(CliObsSmokeTest, FuzzBadValuesExitTwo) {
  struct {
    const char *Flags;
    const char *Needle;
  } Cases[] = {
      {"--count 0", "--count"},
      {"--threads 0", "--threads"},
      {"--ops 9-2", "--ops"},
      {"--via-serve 0", "--via-serve"},
      {"--model sc", "--model"},
      {"--cache maybe", "--cache"},
      {"--families wsq,frobnicator", "frobnicator"},
      {"--no-litmus=1", "takes no value"},
  };
  for (const auto &Case : Cases) {
    std::string Out;
    int Exit = runCommand(std::string(DFENCE_BIN) + " fuzz " + Case.Flags,
                          Out);
    EXPECT_EQ(Exit, 2) << Case.Flags << ": " << Out;
    EXPECT_NE(Out.find(Case.Needle), std::string::npos)
        << Case.Flags << ": " << Out;
  }
}

TEST(CliObsSmokeTest, FuzzSeedBelongsToFuzzAlone) {
  // --fuzz-seed is a fuzz flag; the strict per-command tables reject it
  // on every other command instead of silently ignoring it.
  for (const char *Cmd :
       {" bench \"MSN Queue\" --fuzz-seed 3", " serve --fuzz-seed 3"}) {
    std::string Out;
    int Exit = runCommand(std::string(DFENCE_BIN) + Cmd, Out);
    EXPECT_EQ(Exit, 2) << Cmd << ": " << Out;
    EXPECT_NE(Out.find("unknown flag '--fuzz-seed'"), std::string::npos)
        << Cmd << ": " << Out;
  }
}

TEST(CliObsSmokeTest, HelpDocumentsTheFuzzCommand) {
  std::string Out;
  int Exit = runCommand(std::string(DFENCE_BIN) + " --help", Out);
  EXPECT_EQ(Exit, 0);
  for (const char *Needle :
       {"fuzz", "--fuzz-seed", "--count", "--via-serve", "--families",
        "--no-litmus"})
    EXPECT_NE(Out.find(Needle), std::string::npos)
        << "help is missing " << Needle << "\n" << Out;
}

TEST(CliObsSmokeTest, FuzzMetricsArtifactCarriesFuzzCounters) {
  const std::string Path = "cli_fuzz_metrics.json";
  std::string Out;
  int Exit = runCommand(std::string(DFENCE_BIN) +
                            " fuzz --fuzz-seed 11 --count 4 --k 40"
                            " --rounds 3 --metrics-out " + Path,
                        Out);
  ASSERT_EQ(Exit, 0) << Out;
  Json Metrics = parseOrFail(readFile(Path), Path);
  const Json *Counters = Metrics.find("counters");
  ASSERT_NE(Counters, nullptr);
  ASSERT_NE(Counters->find("fuzz_scenarios_total"), nullptr);
  // 4 generated + 7 litmus shapes.
  EXPECT_EQ(Counters->find("fuzz_scenarios_total")->asU64(), 11u);
  ASSERT_NE(Counters->find("fuzz_violations_total"), nullptr);
  EXPECT_GT(Counters->find("fuzz_violations_total")->asU64(), 0u);
  const Json *Gauges = Metrics.find("gauges");
  ASSERT_NE(Gauges, nullptr);
  ASSERT_NE(Gauges->find("fuzz_distinct_fingerprints"), nullptr);
  EXPECT_GT(Gauges->find("fuzz_distinct_fingerprints")->asDouble(), 0.0);
  std::remove(Path.c_str());
}

TEST(CliObsSmokeTest, WallClockFlagReportsTimeoutWithPartialSummary) {
  std::string Out;
  int Exit = runCommand(std::string(DFENCE_BIN) +
                            " bench \"MS2 Queue\" --wall-clock=1"
                            " --k 400",
                        Out);
  // Timeout degrades to the static fallback, which counts as success.
  EXPECT_EQ(Exit, 0);
  EXPECT_NE(Out.find("result: timeout"), std::string::npos) << Out;
  EXPECT_NE(Out.find("wall-clock deadline"), std::string::npos) << Out;
  EXPECT_NE(Out.find("static fallback"), std::string::npos) << Out;

  // The legacy --total-ms spelling keeps its historical wording.
  Exit = runCommand(std::string(DFENCE_BIN) +
                        " bench \"MS2 Queue\" --total-ms=1 --k 400",
                    Out);
  EXPECT_EQ(Exit, 0);
  EXPECT_NE(Out.find("result: degraded"), std::string::npos) << Out;
}
