//===- IrTest.cpp - Tests for the IR library ------------------------------===//

#include "ir/Builder.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace dfence;
using namespace dfence::ir;

namespace {

/// Builds: f(a, b) { return a + b; }
FuncId buildAdd(Module &M) {
  FunctionBuilder B(M, "add", 2);
  Reg Sum = B.emitBinOp(BinOpKind::Add, 0, 1);
  B.emitRet(Sum);
  return B.finish();
}

} // namespace

TEST(IrTest, BuilderProducesVerifiableModule) {
  Module M;
  buildAdd(M);
  EXPECT_TRUE(verifyModule(M).empty());
  EXPECT_EQ(M.Funcs.size(), 1u);
  EXPECT_EQ(M.Funcs[0].NumParams, 2u);
}

TEST(IrTest, LabelsAreModuleUnique) {
  Module M;
  buildAdd(M);
  FunctionBuilder B(M, "g", 0);
  B.emitConst(1);
  B.emitRetVoid();
  B.finish();
  std::set<InstrId> Ids;
  for (const Function &F : M.Funcs)
    for (const Instr &I : F.Body)
      EXPECT_TRUE(Ids.insert(I.Id).second) << "duplicate label";
}

TEST(IrTest, ForwardBranchesResolve) {
  Module M;
  FunctionBuilder B(M, "f", 1);
  auto Then = B.newLabel();
  auto End = B.newLabel();
  B.emitCondBr(0, Then, End);
  B.bind(Then);
  Reg One = B.emitConst(1);
  B.emitRet(One);
  B.bind(End);
  Reg Zero = B.emitConst(0);
  B.emitRet(Zero);
  FuncId F = B.finish();
  EXPECT_TRUE(verifyModule(M).empty());
  const Function &Fn = M.function(F);
  const Instr &CBr = Fn.Body[0];
  ASSERT_EQ(CBr.Op, Opcode::CondBr);
  EXPECT_EQ(Fn.indexOf(CBr.Target0), 1u);
  EXPECT_EQ(Fn.indexOf(CBr.Target1), 3u);
}

TEST(IrTest, InsertAfterKeepsLabelsStable) {
  Module M;
  FuncId F = buildAdd(M);
  Function &Fn = M.function(F);
  InstrId FirstId = Fn.Body[0].Id;
  Instr Fence;
  Fence.Op = Opcode::Fence;
  Fence.Id = M.nextInstrId();
  Fence.Synthesized = true;
  Fn.insertAfter(FirstId, Fence);
  EXPECT_EQ(Fn.Body.size(), 3u);
  EXPECT_EQ(Fn.indexOf(FirstId), 0u);
  EXPECT_EQ(Fn.Body[1].Op, Opcode::Fence);
  EXPECT_TRUE(verifyModule(M).empty());
}

TEST(IrTest, EraseRemovesInstruction) {
  Module M;
  FuncId F = buildAdd(M);
  Function &Fn = M.function(F);
  Instr Nop;
  Nop.Op = Opcode::Nop;
  Nop.Id = M.nextInstrId();
  Fn.insertAfter(Fn.Body[0].Id, Nop);
  InstrId NopId = Fn.Body[1].Id;
  Fn.erase(NopId);
  EXPECT_FALSE(Fn.containsLabel(NopId));
  EXPECT_EQ(Fn.Body.size(), 2u);
}

TEST(IrTest, CountStoresMatchesInsertionPoints) {
  Module M;
  GlobalId G = M.addGlobal(GlobalVar{"x", 1, {}});
  FunctionBuilder B(M, "f", 0);
  Reg A = B.emitGlobalAddr(G);
  Reg V = B.emitConst(5);
  B.emitStore(A, V);
  B.emitStore(A, V);
  Reg L = B.emitLoad(A);
  B.emitRet(L);
  FuncId F = B.finish();
  EXPECT_EQ(M.function(F).countStores(), 2u);
  EXPECT_EQ(M.totalStoreCount(), 2u);
}

TEST(IrTest, VerifierCatchesBadRegister) {
  Module M;
  FunctionBuilder B(M, "f", 0);
  B.emitRetVoid();
  FuncId F = B.finish();
  M.function(F).Body[0].Ops = {99}; // Out-of-range operand.
  EXPECT_FALSE(verifyModule(M).empty());
}

TEST(IrTest, VerifierCatchesMissingTerminator) {
  Module M;
  FunctionBuilder B(M, "f", 0);
  B.emitConst(1);
  FuncId F = B.finish(); // finish() appends ret; remove it.
  M.function(F).Body.pop_back();
  M.function(F).buildIndex();
  EXPECT_FALSE(verifyModule(M).empty());
}

TEST(IrTest, PrinterMentionsOpcodes) {
  Module M;
  buildAdd(M);
  std::string S = printModule(M);
  EXPECT_NE(S.find("func add"), std::string::npos);
  EXPECT_NE(S.find("ret"), std::string::npos);
}

TEST(IrTest, EvalBinOpSignedSemantics) {
  auto W = [](int64_t V) { return static_cast<Word>(V); };
  EXPECT_EQ(evalBinOp(BinOpKind::Lt, W(-1), W(0)), 1u);
  EXPECT_EQ(evalBinOp(BinOpKind::Gt, W(-1), W(0)), 0u);
  EXPECT_EQ(evalBinOp(BinOpKind::Div, W(-7), W(2)), W(-3));
  EXPECT_EQ(evalBinOp(BinOpKind::Rem, W(7), W(3)), 1u);
  EXPECT_EQ(evalBinOp(BinOpKind::Div, W(1), W(0)), 0u) << "div-by-0 safe";
  EXPECT_EQ(evalBinOp(BinOpKind::Add, W(-1), W(1)), 0u);
  EXPECT_EQ(evalBinOp(BinOpKind::Shl, W(1), W(70)), 0u);
}

TEST(IrTest, FunctionOfLabel) {
  Module M;
  FuncId F1 = buildAdd(M);
  FunctionBuilder B(M, "g", 0);
  B.emitRetVoid();
  FuncId F2 = B.finish();
  EXPECT_EQ(M.functionOfLabel(M.function(F1).Body[0].Id), F1);
  EXPECT_EQ(M.functionOfLabel(M.function(F2).Body[0].Id), F2);
  EXPECT_FALSE(M.functionOfLabel(9999).has_value());
}
