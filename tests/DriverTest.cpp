//===- DriverTest.cpp - Client DSL and spec registry ----------------------===//

#include "driver/ClientDsl.h"
#include "driver/SpecRegistry.h"
#include "vm/History.h"

#include <gtest/gtest.h>

using namespace dfence;
using namespace dfence::driver;

TEST(ClientDslTest, SingleThreadSingleCall) {
  std::string Err;
  auto C = parseClientDsl("put(1)", Err);
  ASSERT_TRUE(C.has_value()) << Err;
  ASSERT_EQ(C->Threads.size(), 1u);
  ASSERT_EQ(C->Threads[0].Calls.size(), 1u);
  EXPECT_EQ(C->Threads[0].Calls[0].Func, "put");
  ASSERT_EQ(C->Threads[0].Calls[0].Args.size(), 1u);
  EXPECT_EQ(C->Threads[0].Calls[0].Args[0].Literal, 1u);
}

TEST(ClientDslTest, MultiThreadMultiCall) {
  std::string Err;
  auto C = parseClientDsl("put(1);put(2);take()|steal();steal()", Err);
  ASSERT_TRUE(C.has_value()) << Err;
  ASSERT_EQ(C->Threads.size(), 2u);
  EXPECT_EQ(C->Threads[0].Calls.size(), 3u);
  EXPECT_EQ(C->Threads[1].Calls.size(), 2u);
  EXPECT_EQ(C->Threads[0].Calls[2].Func, "take");
  EXPECT_TRUE(C->Threads[0].Calls[2].Args.empty());
}

TEST(ClientDslTest, ResultReferences) {
  std::string Err;
  auto C = parseClientDsl("alloc();release($0);alloc()", Err);
  ASSERT_TRUE(C.has_value()) << Err;
  ASSERT_EQ(C->Threads[0].Calls[1].Args.size(), 1u);
  EXPECT_EQ(C->Threads[0].Calls[1].Args[0].Ref, 0);
}

TEST(ClientDslTest, NegativeAndMultipleArguments) {
  std::string Err;
  auto C = parseClientDsl("f(-3, 7, $0)|g( 1 )", Err);
  // $0 in the second call of a thread with one preceding call — wait,
  // f is the first call so $0 is invalid there.
  EXPECT_FALSE(C.has_value());
  C = parseClientDsl("h();f(-3, 7, $0)|g( 1 )", Err);
  ASSERT_TRUE(C.has_value()) << Err;
  EXPECT_EQ(static_cast<int64_t>(C->Threads[0].Calls[1].Args[0].Literal),
            -3);
  EXPECT_EQ(C->Threads[0].Calls[1].Args[2].Ref, 0);
}

TEST(ClientDslTest, ForwardReferenceRejected) {
  std::string Err;
  EXPECT_FALSE(parseClientDsl("release($0)", Err).has_value());
  EXPECT_NE(Err.find("$0"), std::string::npos);
  EXPECT_FALSE(parseClientDsl("a();b($2)", Err).has_value());
}

TEST(ClientDslTest, SyntaxErrors) {
  std::string Err;
  EXPECT_FALSE(parseClientDsl("", Err).has_value());
  EXPECT_FALSE(parseClientDsl("put(1", Err).has_value());
  EXPECT_FALSE(parseClientDsl("put 1)", Err).has_value());
  EXPECT_FALSE(parseClientDsl("put(1,)", Err).has_value());
  EXPECT_FALSE(parseClientDsl("put(1)extra", Err).has_value());
  EXPECT_FALSE(parseClientDsl("123()", Err).has_value());
}

TEST(ClientDslTest, RoundTrip) {
  std::string Err;
  const char *Text = "put(1);take()|steal();release($0)";
  auto C = parseClientDsl(Text, Err);
  ASSERT_TRUE(C.has_value()) << Err;
  EXPECT_EQ(printClientDsl(*C), Text);
  auto C2 = parseClientDsl(printClientDsl(*C), Err);
  ASSERT_TRUE(C2.has_value());
  EXPECT_EQ(printClientDsl(*C2), Text);
}

TEST(SpecRegistryTest, KnownSpecsResolve) {
  for (const std::string &Name : knownSpecNames()) {
    spec::SpecFactory F = specByName(Name);
    ASSERT_TRUE(static_cast<bool>(F)) << Name;
    EXPECT_TRUE(F() != nullptr) << Name;
  }
}

TEST(SpecRegistryTest, UnknownSpecIsNull) {
  EXPECT_FALSE(static_cast<bool>(specByName("nope")));
  EXPECT_FALSE(static_cast<bool>(specByName("")));
}

TEST(SpecRegistryTest, WsqVariantsDiffer) {
  // The three WSQ variants disagree on which element steal removes.
  auto MakeOp = [](const char *F, vm::Word Arg, vm::Word Ret) {
    vm::OpRecord O;
    O.Func = F;
    if (F == std::string("put"))
      O.Args = {Arg};
    O.Ret = Ret;
    O.Completed = true;
    return O;
  };
  for (const char *Name : {"wsq", "wsq-lifo", "wsq-fifo"}) {
    auto S = specByName(Name)();
    ASSERT_TRUE(S->apply(MakeOp("put", 1, 0)));
    ASSERT_TRUE(S->apply(MakeOp("put", 2, 0)));
    bool StealsHead = S->apply(MakeOp("steal", 0, 1));
    bool ExpectHead = std::string(Name) != "wsq-lifo";
    EXPECT_EQ(StealsHead, ExpectHead) << Name;
  }
}
