//===- MemModelPropertyTest.cpp - Invariants of Semantics 1 ---------------===//
//
// Property-style sweeps over seeds and models checking the invariants the
// store-buffer semantics must preserve no matter how the demonic
// scheduler behaves:
//
//   * read-own-writes (store-to-load forwarding),
//   * per-variable coherence (stores to one variable are seen in order),
//   * TSO's global store order (no fresh-flag/stale-data),
//   * fences/CAS restoring orders per model,
//   * equivalence of all models on single-threaded programs,
//   * monotonicity: everything SC-observable is TSO-observable, and
//     everything TSO-observable is PSO-observable (on these shapes).
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "vm/Interp.h"

#include <gtest/gtest.h>

#include <set>

using namespace dfence;
using namespace dfence::vm;

namespace {

struct Sweep {
  MemModel Model;
  double FlushProb;
};

std::vector<Sweep> allSweeps() {
  return {{MemModel::SC, 0.5},  {MemModel::TSO, 0.1},
          {MemModel::TSO, 0.5}, {MemModel::PSO, 0.1},
          {MemModel::PSO, 0.5}, {MemModel::PSO, 0.9}};
}

/// Runs a client over many seeds and returns every observed vector of
/// per-thread returns (thread-indexed).
std::set<std::vector<Word>> observe(const ir::Module &M, const Client &C,
                                    const Sweep &S, int Seeds = 250) {
  std::set<std::vector<Word>> Out;
  for (int Seed = 1; Seed <= Seeds; ++Seed) {
    ExecConfig Cfg;
    Cfg.Model = S.Model;
    Cfg.Seed = static_cast<uint64_t>(Seed);
    Cfg.FlushProb = S.FlushProb;
    ExecResult R = runExecution(M, C, Cfg);
    EXPECT_EQ(R.Out, Outcome::Completed) << R.Message;
    std::vector<Word> Rets(C.Threads.size(), 0);
    std::vector<size_t> Next(C.Threads.size(), 0);
    // Concatenate per-thread returns into fixed slots (per-thread order
    // of ops is program order).
    std::vector<std::vector<Word>> PerThread(C.Threads.size());
    for (const OpRecord &Op : R.Hist.Ops)
      PerThread[Op.Thread].push_back(Op.Ret);
    std::vector<Word> Flat;
    for (const auto &V : PerThread)
      for (Word W : V)
        Flat.push_back(W);
    Out.insert(std::move(Flat));
  }
  return Out;
}

Client makeClient(std::initializer_list<std::vector<const char *>> Ts) {
  Client C;
  for (const auto &T : Ts) {
    ThreadScript S;
    for (const char *F : T) {
      MethodCall MC;
      MC.Func = F;
      S.Calls.push_back(MC);
    }
    C.Threads.push_back(std::move(S));
  }
  return C;
}

class ModelSweepTest : public ::testing::TestWithParam<int> {
protected:
  Sweep sweep() const { return allSweeps()[GetParam()]; }
};

} // namespace

TEST_P(ModelSweepTest, ReadOwnWrites) {
  // A thread always observes its latest own store.
  auto M = frontend::compileOrDie(R"(
global int X = 0;
int w() {
  X = 1;
  int a = X;
  X = 2;
  int b = X;
  return a * 10 + b;
}
int other() {
  X = 5;
  return 0;
}
)");
  Client C = makeClient({{"w"}});
  for (const auto &Rets : observe(M, C, sweep()))
    EXPECT_EQ(Rets[0], 12u);
  // With an interfering thread, the read after our own store sees either
  // our value (forwarded from the buffer, or already flushed to memory)
  // or the interferer's — never anything staler (0 or 1).
  Client C2 = makeClient({{"w"}, {"other"}});
  for (const auto &Rets : observe(M, C2, sweep())) {
    Word B = Rets[0] % 10;
    EXPECT_TRUE(B == 2 || B == 5) << "stale value " << B;
  }
}

TEST_P(ModelSweepTest, PerVariableCoherence) {
  // Stores 1,2,3 to one variable; a sampling reader must see a
  // non-decreasing sequence (per-variable FIFO order holds even on PSO).
  auto M = frontend::compileOrDie(R"(
global int X = 0;
int w() {
  X = 1;
  X = 2;
  X = 3;
  return 0;
}
int r() {
  int a = X;
  int b = X;
  int c = X;
  return a * 100 + b * 10 + c;
}
)");
  Client C = makeClient({{"w"}, {"r"}});
  for (const auto &Rets : observe(M, C, sweep(), 400)) {
    Word V = Rets[1];
    Word A = V / 100, B = (V / 10) % 10, Cc = V % 10;
    EXPECT_LE(A, B) << "coherence violated: " << V;
    EXPECT_LE(B, Cc) << "coherence violated: " << V;
    EXPECT_LE(Cc, 3u);
  }
}

TEST_P(ModelSweepTest, SingleThreadedProgramsAgreeAcrossModels) {
  // Without concurrency, every model computes the same results.
  auto M = frontend::compileOrDie(R"(
global int X = 0;
global int arr[8];
int f() {
  int i = 0;
  while (i < 8) {
    arr[i] = i * i;
    i = i + 1;
  }
  X = arr[3] + arr[5];
  int p = malloc(2);
  *p = X;
  int v = *p;
  fence();  // free() does not flush buffers (paper §5.2); drain first.
  free(p);
  return v;
}
)");
  Client C = makeClient({{"f"}});
  auto Rets = observe(M, C, sweep(), 100);
  ASSERT_EQ(Rets.size(), 1u);
  EXPECT_EQ((*Rets.begin())[0], 34u);
}

TEST_P(ModelSweepTest, FullFenceMakesMpAndSbSafe) {
  auto M = frontend::compileOrDie(R"(
global int X = 0;
global int Y = 0;
int t1() {
  X = 1;
  fence();
  return Y;
}
int t2() {
  Y = 1;
  fence();
  return X;
}
)");
  Client C = makeClient({{"t1"}, {"t2"}});
  for (const auto &Rets : observe(M, C, sweep(), 400))
    EXPECT_FALSE(Rets[0] == 0 && Rets[1] == 0)
        << "full fences forbid the SB outcome on every model";
}

TEST_P(ModelSweepTest, LockRegionsAreSequentiallyConsistent) {
  // Fully locked increments can never lose updates, on any model.
  auto M = frontend::compileOrDie(R"(
global int L = 0;
global int G = 0;
int bump() {
  lock(&L);
  int v = G;
  G = v + 1;
  unlock(&L);
  return 0;
}
int readG() {
  lock(&L);
  int v = G;
  unlock(&L);
  return v;
}
)");
  Client C;
  {
    ThreadScript A, B;
    MethodCall Bump;
    Bump.Func = "bump";
    A.Calls = {Bump, Bump};
    B.Calls = {Bump, Bump};
    ThreadScript Obs;
    MethodCall Read;
    Read.Func = "readG";
    Obs.Calls = {Read};
    C.Threads = {A, B, Obs};
  }
  Sweep S = sweep();
  for (int Seed = 1; Seed <= 200; ++Seed) {
    ExecConfig Cfg;
    Cfg.Model = S.Model;
    Cfg.Seed = static_cast<uint64_t>(Seed);
    Cfg.FlushProb = S.FlushProb;
    ExecResult R = runExecution(M, C, Cfg);
    ASSERT_EQ(R.Out, Outcome::Completed) << R.Message;
    for (const OpRecord &Op : R.Hist.Ops)
      if (Op.Func == "readG")
        EXPECT_LE(Op.Ret, 4u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Models, ModelSweepTest,
    ::testing::Range(0, static_cast<int>(allSweeps().size())),
    [](const ::testing::TestParamInfo<int> &Info) {
      const Sweep S = allSweeps()[Info.param];
      return std::string(vm::memModelName(S.Model)) + "_p" +
             std::to_string(static_cast<int>(S.FlushProb * 100));
    });

//===----------------------------------------------------------------------===//
// Cross-model inclusion: SC ⊆ TSO ⊆ PSO observable outcomes
//===----------------------------------------------------------------------===//

namespace {

std::set<std::vector<Word>> outcomesFor(const char *Src, MemModel Model,
                                        double Prob, int Seeds) {
  auto M = frontend::compileOrDie(Src);
  Client C = makeClient({{"t1"}, {"t2"}});
  Sweep S{Model, Prob};
  return observe(M, C, S, Seeds);
}

} // namespace

TEST(ModelInclusionTest, ScOutcomesSubsetOfTsoSubsetOfPso) {
  const char *Src = R"(
global int X = 0;
global int Y = 0;
int t1() {
  X = 1;
  int a = Y;
  X = 2;
  int b = Y;
  return a * 10 + b;
}
int t2() {
  Y = 1;
  int a = X;
  Y = 2;
  int b = X;
  return a * 10 + b;
}
)";
  // Sampling cannot prove set inclusion (a rare SC interleaving may not
  // be drawn under the TSO scheduler), so check the monotone signals it
  // can: the relaxed models observe strictly more behaviours, including
  // the signature SB outcome (both first loads return 0), which SC must
  // never produce.
  auto Sc = outcomesFor(Src, MemModel::SC, 0.5, 600);
  auto Tso = outcomesFor(Src, MemModel::TSO, 0.3, 1500);
  auto Pso = outcomesFor(Src, MemModel::PSO, 0.3, 1500);
  auto HasBothStale = [](const std::set<std::vector<Word>> &S) {
    for (const auto &O : S)
      if (O[0] / 10 == 0 && O[1] / 10 == 0)
        return true;
    return false;
  };
  EXPECT_FALSE(HasBothStale(Sc)) << "SC forbids the SB outcome";
  EXPECT_TRUE(HasBothStale(Tso));
  EXPECT_TRUE(HasBothStale(Pso));
  EXPECT_GT(Tso.size(), Sc.size()) << "TSO should relax SC here";
  EXPECT_GE(Pso.size(), Tso.size()) << "PSO relaxes at least TSO";
}
