//===- SatTest.cpp - CDCL solver and minimal-model tests ------------------===//

#include "sat/MinimalModels.h"
#include "sat/Solver.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace dfence;
using namespace dfence::sat;

namespace {

/// Brute-force SAT check for cross-validation (n <= ~20 vars).
bool bruteForceSat(unsigned NumVars,
                   const std::vector<std::vector<Lit>> &Clauses) {
  for (uint64_t Assign = 0; Assign < (1ULL << NumVars); ++Assign) {
    bool AllSat = true;
    for (const auto &C : Clauses) {
      bool Sat = false;
      for (Lit L : C) {
        bool V = (Assign >> L.var()) & 1;
        if (V != L.sign()) {
          Sat = true;
          break;
        }
      }
      if (!Sat) {
        AllSat = false;
        break;
      }
    }
    if (AllSat)
      return true;
  }
  return false;
}

} // namespace

TEST(SolverTest, TrivialSat) {
  Solver S;
  Var A = S.newVar();
  EXPECT_TRUE(S.addClause({Lit::pos(A)}));
  EXPECT_TRUE(S.solve());
  EXPECT_EQ(S.modelValue(A), LBool::True);
}

TEST(SolverTest, TrivialUnsat) {
  Solver S;
  Var A = S.newVar();
  EXPECT_TRUE(S.addClause({Lit::pos(A)}));
  EXPECT_FALSE(S.addClause({Lit::neg(A)}));
  EXPECT_FALSE(S.solve());
}

TEST(SolverTest, UnitPropagationChain) {
  Solver S;
  std::vector<Var> V;
  for (int I = 0; I < 10; ++I)
    V.push_back(S.newVar());
  S.addClause({Lit::pos(V[0])});
  for (int I = 0; I + 1 < 10; ++I)
    S.addClause({Lit::neg(V[I]), Lit::pos(V[I + 1])}); // v_i -> v_{i+1}
  ASSERT_TRUE(S.solve());
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(S.modelValue(V[I]), LBool::True);
}

TEST(SolverTest, ModelSatisfiesAllClauses) {
  Solver S;
  std::vector<Var> V;
  for (int I = 0; I < 6; ++I)
    V.push_back(S.newVar());
  std::vector<std::vector<Lit>> Clauses = {
      {Lit::pos(V[0]), Lit::pos(V[1])},
      {Lit::neg(V[0]), Lit::pos(V[2])},
      {Lit::neg(V[1]), Lit::neg(V[2]), Lit::pos(V[3])},
      {Lit::neg(V[3]), Lit::pos(V[4]), Lit::pos(V[5])},
      {Lit::neg(V[4])},
  };
  for (auto &C : Clauses)
    ASSERT_TRUE(S.addClause(C));
  ASSERT_TRUE(S.solve());
  for (const auto &C : Clauses) {
    bool Sat = false;
    for (Lit L : C)
      if (S.modelValue(L.var()) ==
          (L.sign() ? LBool::False : LBool::True))
        Sat = true;
    EXPECT_TRUE(Sat);
  }
}

TEST(SolverTest, PigeonholeUnsat) {
  // 4 pigeons into 3 holes: classic small UNSAT needing real search.
  const int P = 4, H = 3;
  Solver S;
  Var X[4][3];
  for (int I = 0; I < P; ++I)
    for (int J = 0; J < H; ++J)
      X[I][J] = S.newVar();
  bool Ok = true;
  for (int I = 0; I < P; ++I) {
    std::vector<Lit> C;
    for (int J = 0; J < H; ++J)
      C.push_back(Lit::pos(X[I][J]));
    Ok = S.addClause(C) && Ok;
  }
  for (int J = 0; J < H; ++J)
    for (int I1 = 0; I1 < P; ++I1)
      for (int I2 = I1 + 1; I2 < P; ++I2)
        Ok = S.addClause({Lit::neg(X[I1][J]), Lit::neg(X[I2][J])}) && Ok;
  EXPECT_FALSE(Ok && S.solve());
}

TEST(SolverTest, IncrementalSolvingWithBlockingClauses) {
  Solver S;
  Var A = S.newVar(), B = S.newVar();
  S.addClause({Lit::pos(A), Lit::pos(B)});
  int Models = 0;
  while (S.solve() && Models < 10) {
    ++Models;
    std::vector<Lit> Block;
    for (Var V : {A, B})
      Block.push_back(S.modelValue(V) == LBool::True ? Lit::neg(V)
                                                     : Lit::pos(V));
    if (!S.addClause(Block))
      break;
  }
  EXPECT_EQ(Models, 3) << "a|b has exactly three models";
}

// Property test: random 3-SAT instances agree with brute force.
class RandomSatTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomSatTest, AgreesWithBruteForce) {
  Rng R(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  const unsigned NumVars = 8;
  const unsigned NumClauses = 3 + R.nextBelow(30);
  std::vector<std::vector<Lit>> Clauses;
  for (unsigned I = 0; I < NumClauses; ++I) {
    std::vector<Lit> C;
    for (int K = 0; K < 3; ++K) {
      Var V = static_cast<Var>(R.nextBelow(NumVars));
      C.push_back(R.nextBool(0.5) ? Lit::pos(V) : Lit::neg(V));
    }
    Clauses.push_back(std::move(C));
  }
  Solver S;
  for (unsigned V = 0; V < NumVars; ++V)
    S.newVar();
  bool AddOk = true;
  for (auto &C : Clauses)
    AddOk = S.addClause(C) && AddOk;
  bool SolverSat = AddOk && S.solve();
  EXPECT_EQ(SolverSat, bruteForceSat(NumVars, Clauses));
  if (SolverSat) {
    for (const auto &C : Clauses) {
      bool Sat = false;
      for (Lit L : C)
        if (S.modelValue(L.var()) ==
            (L.sign() ? LBool::False : LBool::True))
          Sat = true;
      EXPECT_TRUE(Sat) << "returned model must satisfy every clause";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random3Sat, RandomSatTest,
                         ::testing::Range(0, 60));

//===----------------------------------------------------------------------===//
// Minimal models of monotone CNF
//===----------------------------------------------------------------------===//

TEST(MinimalModelsTest, SingleClause) {
  MonotoneCnf F;
  F.NumVars = 3;
  F.Clauses = {{0, 1, 2}};
  bool Unsat = false;
  auto Models = enumerateMinimalModels(F, 100, Unsat);
  EXPECT_FALSE(Unsat);
  ASSERT_EQ(Models.size(), 3u) << "each single var is a minimal model";
  for (const auto &M : Models)
    EXPECT_EQ(M.size(), 1u);
}

TEST(MinimalModelsTest, TwoDisjointClauses) {
  MonotoneCnf F;
  F.NumVars = 4;
  F.Clauses = {{0, 1}, {2, 3}};
  bool Unsat = false;
  auto Models = enumerateMinimalModels(F, 100, Unsat);
  EXPECT_EQ(Models.size(), 4u); // {0,2},{0,3},{1,2},{1,3}
  for (const auto &M : Models)
    EXPECT_EQ(M.size(), 2u);
}

TEST(MinimalModelsTest, SharedVariablePreferred) {
  MonotoneCnf F;
  F.NumVars = 3;
  F.Clauses = {{0, 2}, {1, 2}};
  bool Unsat = false;
  auto Min = minimumModel(F, Unsat);
  ASSERT_EQ(Min.size(), 1u);
  EXPECT_EQ(Min[0], 2u) << "hitting both clauses with var 2 is minimum";
}

TEST(MinimalModelsTest, EmptyFormulaHasEmptyModel) {
  MonotoneCnf F;
  F.NumVars = 3;
  bool Unsat = false;
  auto Min = minimumModel(F, Unsat);
  EXPECT_FALSE(Unsat);
  EXPECT_TRUE(Min.empty());
}

TEST(MinimalModelsTest, EmptyClauseUnsat) {
  MonotoneCnf F;
  F.NumVars = 2;
  F.Clauses = {{}};
  bool Unsat = false;
  enumerateMinimalModels(F, 10, Unsat);
  EXPECT_TRUE(Unsat);
}

// Property test: SAT-based minimum model cardinality matches the exact
// branch-and-bound hitting-set solver on random monotone formulas.
class MinModelPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MinModelPropertyTest, MatchesExactHittingSet) {
  Rng R(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  MonotoneCnf F;
  F.NumVars = 2 + static_cast<unsigned>(R.nextBelow(8));
  unsigned NumClauses = 1 + R.nextBelow(10);
  for (unsigned I = 0; I < NumClauses; ++I) {
    std::vector<Var> C;
    unsigned Len = 1 + R.nextBelow(4);
    for (unsigned K = 0; K < Len; ++K)
      C.push_back(static_cast<Var>(R.nextBelow(F.NumVars)));
    std::sort(C.begin(), C.end());
    C.erase(std::unique(C.begin(), C.end()), C.end());
    F.Clauses.push_back(std::move(C));
  }
  bool UnsatA = false, UnsatB = false;
  auto A = minimumModel(F, UnsatA);
  auto B = minimumHittingSet(F, UnsatB);
  EXPECT_EQ(UnsatA, UnsatB);
  if (!UnsatA) {
    EXPECT_EQ(A.size(), B.size())
        << "SAT-based and exact minimum cardinalities must agree";
    std::vector<bool> Assign(F.NumVars, false);
    for (Var V : A)
      Assign[V] = true;
    EXPECT_TRUE(F.isSatisfiedBy(Assign));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMonotone, MinModelPropertyTest,
                         ::testing::Range(0, 60));
