//===- ProgramsTest.cpp - Benchmark suite sanity --------------------------===//
//
// Every Table-2 algorithm must (a) compile and verify, (b) behave
// correctly sequentially, and (c) satisfy its own specification on every
// client under SC across many schedules — otherwise fence synthesis would
// chase algorithmic bugs rather than memory-model bugs.
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "ir/Verifier.h"
#include "programs/Benchmark.h"
#include "spec/Checkers.h"
#include "spec/Specs.h"
#include "synth/Synthesizer.h"
#include "vm/Interp.h"

#include <gtest/gtest.h>

using namespace dfence;
using namespace dfence::programs;
using vm::EmptyVal;
using vm::MemModel;

namespace {

std::vector<std::string> benchmarkNames() {
  std::vector<std::string> Names;
  for (const Benchmark &B : allBenchmarks())
    Names.push_back(B.Name);
  return Names;
}

vm::ExecResult runBenchClient(const Benchmark &B, const vm::Client &C,
                              MemModel Model, uint64_t Seed,
                              double FlushProb = 0.5) {
  auto CR = frontend::compileMiniC(B.Source);
  EXPECT_TRUE(CR.Ok) << B.Name << ": " << CR.Error;
  vm::ExecConfig Cfg;
  Cfg.Model = Model;
  Cfg.Seed = Seed;
  Cfg.FlushProb = FlushProb;
  Cfg.MaxSteps = 50000;
  return vm::runExecution(CR.Module, C, Cfg);
}

} // namespace

TEST(ProgramsTest, SuiteHasThirteenBenchmarks) {
  EXPECT_EQ(allBenchmarks().size(), 13u);
}

TEST(ProgramsTest, NoFencesShippedInSources) {
  // The sources are deliberately fence-free: DFENCE infers the fences.
  for (const Benchmark &B : allBenchmarks()) {
    EXPECT_EQ(B.Source.find("fence"), std::string::npos)
        << B.Name << " should not contain fences";
  }
}

TEST(ProgramsTest, BenchmarkByNameLookup) {
  EXPECT_EQ(benchmarkByName("Chase-Lev WSQ").Name, "Chase-Lev WSQ");
  EXPECT_EQ(benchmarkByName("Michael Allocator").Clients.size(), 2u);
}

class BenchmarkSuiteTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkSuiteTest, CompilesAndVerifies) {
  const Benchmark &B = benchmarkByName(GetParam());
  auto CR = frontend::compileMiniC(B.Source);
  ASSERT_TRUE(CR.Ok) << CR.Error;
  EXPECT_TRUE(ir::verifyModule(CR.Module).empty());
  EXPECT_GT(CR.Module.totalStoreCount(), 0u);
  EXPECT_FALSE(B.Clients.empty());
}

TEST_P(BenchmarkSuiteTest, ClientsSatisfySpecUnderSC) {
  const Benchmark &B = benchmarkByName(GetParam());
  synth::SynthConfig Check;
  Check.Model = MemModel::SC;
  Check.Spec = B.UseNoGarbage ? synth::SpecKind::NoGarbage
               : B.Factory    ? synth::SpecKind::Linearizability
                              : synth::SpecKind::MemorySafety;
  Check.Factory = B.Factory;
  for (const vm::Client &C : B.Clients) {
    for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
      vm::ExecResult R = runBenchClient(B, C, MemModel::SC, Seed);
      ASSERT_EQ(R.Out, vm::Outcome::Completed)
          << B.Name << "/" << C.Name << " seed " << Seed << ": "
          << R.Message;
      EXPECT_EQ(synth::checkExecution(R, Check), "")
          << B.Name << "/" << C.Name << " seed " << Seed << "\n"
          << R.Hist.str();
    }
  }
}

TEST_P(BenchmarkSuiteTest, ExecutionsCompleteUnderRelaxedModels) {
  // Under TSO/PSO the unfenced algorithms may return wrong values, but
  // executions must still terminate (discarded step-limit runs aside).
  const Benchmark &B = benchmarkByName(GetParam());
  for (MemModel Model : {MemModel::TSO, MemModel::PSO}) {
    int Completed = 0;
    for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
      vm::ExecResult R =
          runBenchClient(B, B.Clients[0], Model, Seed, 0.4);
      if (R.Out == vm::Outcome::Completed ||
          R.Out == vm::Outcome::MemSafety ||
          R.Out == vm::Outcome::AssertFail)
        ++Completed;
      EXPECT_NE(R.Out, vm::Outcome::Deadlock)
          << B.Name << " seed " << Seed;
    }
    EXPECT_GT(Completed, 10) << B.Name << " under "
                             << vm::memModelName(Model);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkSuiteTest,
    ::testing::ValuesIn(benchmarkNames()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      std::string Name = Info.param;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===//
// Sequential semantics per queue family
//===----------------------------------------------------------------------===//

namespace {

/// Runs put(1) put(2) put(3) then three consuming ops sequentially and
/// returns the consumed triple.
std::vector<vm::Word> consumeOrder(const std::string &Src,
                                   const char *Op1, const char *Op2,
                                   const char *Op3) {
  auto M = frontend::compileOrDie(Src);
  vm::Client C;
  vm::ThreadScript S;
  for (int V = 1; V <= 3; ++V) {
    vm::MethodCall P;
    P.Func = "put";
    P.Args = {vm::Arg(V)};
    S.Calls.push_back(P);
  }
  for (const char *Op : {Op1, Op2, Op3}) {
    vm::MethodCall MC;
    MC.Func = Op;
    S.Calls.push_back(MC);
  }
  C.Threads = {S};
  vm::ExecConfig Cfg;
  vm::ExecResult R = vm::runExecution(M, C, Cfg);
  EXPECT_EQ(R.Out, vm::Outcome::Completed) << R.Message;
  return {R.Hist.Ops[3].Ret, R.Hist.Ops[4].Ret, R.Hist.Ops[5].Ret};
}

} // namespace

TEST(ProgramsTest, ChaseLevSequentialSemantics) {
  auto V = consumeOrder(chaseLevSource(), "take", "steal", "take");
  EXPECT_EQ(V[0], 3u) << "take pops the tail";
  EXPECT_EQ(V[1], 1u) << "steal pops the head";
  EXPECT_EQ(V[2], 2u);
}

TEST(ProgramsTest, CilkTheSequentialSemantics) {
  auto V = consumeOrder(cilkTheSource(), "take", "steal", "take");
  EXPECT_EQ(V[0], 3u);
  EXPECT_EQ(V[1], 1u);
  EXPECT_EQ(V[2], 2u);
}

TEST(ProgramsTest, LifoVariantsPopTheTop) {
  for (const std::string &Src : {lifoIwsqSource(), lifoWsqSource()}) {
    auto V = consumeOrder(Src, "take", "steal", "take");
    EXPECT_EQ(V[0], 3u);
    EXPECT_EQ(V[1], 2u) << "LIFO steal also pops the top";
    EXPECT_EQ(V[2], 1u);
  }
}

TEST(ProgramsTest, FifoVariantsPopTheHead) {
  for (const std::string &Src : {fifoIwsqSource(), fifoWsqSource()}) {
    auto V = consumeOrder(Src, "take", "steal", "take");
    EXPECT_EQ(V[0], 1u);
    EXPECT_EQ(V[1], 2u);
    EXPECT_EQ(V[2], 3u);
  }
}

TEST(ProgramsTest, AnchorVariantsAreDeques) {
  for (const std::string &Src : {anchorIwsqSource(), anchorWsqSource()}) {
    auto V = consumeOrder(Src, "take", "steal", "take");
    EXPECT_EQ(V[0], 3u) << "take pops the tail";
    EXPECT_EQ(V[1], 1u) << "steal pops the head";
    EXPECT_EQ(V[2], 2u);
  }
}

TEST(ProgramsTest, EmptyReturnsEmpty) {
  for (const Benchmark &B : allBenchmarks()) {
    if (B.Name.find("WSQ") == std::string::npos &&
        B.Name.find("iWSQ") == std::string::npos)
      continue;
    auto M = frontend::compileOrDie(B.Source);
    EXPECT_EQ(vm::runSequential(M, "take", {}), EmptyVal) << B.Name;
    EXPECT_EQ(vm::runSequential(M, "steal", {}), EmptyVal) << B.Name;
  }
}

TEST(ProgramsTest, QueuesSequentialFifo) {
  for (const std::string &Src : {ms2QueueSource(), msnQueueSource()}) {
    auto M = frontend::compileOrDie(Src);
    vm::Client C;
    C.InitFunc = "init";
    vm::ThreadScript S;
    for (int V = 1; V <= 3; ++V) {
      vm::MethodCall E;
      E.Func = "enqueue";
      E.Args = {vm::Arg(V)};
      S.Calls.push_back(E);
    }
    for (int I = 0; I < 4; ++I) {
      vm::MethodCall D;
      D.Func = "dequeue";
      S.Calls.push_back(D);
    }
    C.Threads = {S};
    vm::ExecConfig Cfg;
    auto R = vm::runExecution(M, C, Cfg);
    ASSERT_EQ(R.Out, vm::Outcome::Completed) << R.Message;
    EXPECT_EQ(R.Hist.Ops[3].Ret, 1u);
    EXPECT_EQ(R.Hist.Ops[4].Ret, 2u);
    EXPECT_EQ(R.Hist.Ops[5].Ret, 3u);
    EXPECT_EQ(R.Hist.Ops[6].Ret, EmptyVal);
  }
}

TEST(ProgramsTest, SetsSequentialSemantics) {
  for (const std::string &Src : {lazyListSource(), harrisSetSource()}) {
    auto M = frontend::compileOrDie(Src);
    vm::Client C;
    C.InitFunc = "init";
    vm::ThreadScript S;
    auto Call = [](const char *F, int V) {
      vm::MethodCall MC;
      MC.Func = F;
      MC.Args = {vm::Arg(V)};
      return MC;
    };
    S.Calls = {Call("add", 5),      Call("add", 3),  Call("add", 5),
               Call("contains", 3), Call("remove", 3),
               Call("contains", 3), Call("remove", 3)};
    C.Threads = {S};
    vm::ExecConfig Cfg;
    auto R = vm::runExecution(M, C, Cfg);
    ASSERT_EQ(R.Out, vm::Outcome::Completed) << R.Message;
    EXPECT_EQ(R.Hist.Ops[0].Ret, 1u);
    EXPECT_EQ(R.Hist.Ops[1].Ret, 1u);
    EXPECT_EQ(R.Hist.Ops[2].Ret, 0u) << "duplicate add";
    EXPECT_EQ(R.Hist.Ops[3].Ret, 1u);
    EXPECT_EQ(R.Hist.Ops[4].Ret, 1u);
    EXPECT_EQ(R.Hist.Ops[5].Ret, 0u);
    EXPECT_EQ(R.Hist.Ops[6].Ret, 0u) << "double remove";
  }
}

TEST(ProgramsTest, AllocatorSequentialReuse) {
  auto M = frontend::compileOrDie(michaelAllocatorSource());
  vm::Client C;
  vm::ThreadScript S;
  vm::MethodCall A;
  A.Func = "alloc";
  vm::MethodCall F0;
  F0.Func = "release";
  F0.Args = {vm::Arg::resultOf(0)};
  vm::MethodCall A2;
  A2.Func = "alloc";
  S.Calls = {A, F0, A2};
  C.Threads = {S};
  vm::ExecConfig Cfg;
  auto R = vm::runExecution(M, C, Cfg);
  ASSERT_EQ(R.Out, vm::Outcome::Completed) << R.Message;
  EXPECT_NE(R.Hist.Ops[0].Ret, 0u);
  EXPECT_NE(R.Hist.Ops[2].Ret, 0u);
}

TEST(ProgramsTest, SourceLocMetricsAreReasonable) {
  for (const Benchmark &B : allBenchmarks()) {
    auto CR = frontend::compileMiniC(B.Source);
    ASSERT_TRUE(CR.Ok);
    EXPECT_GT(CR.SourceLines, 20u) << B.Name;
    EXPECT_GT(CR.Module.totalInstrCount(), CR.SourceLines / 2) << B.Name;
  }
}

//===----------------------------------------------------------------------===//
// The full Chase-Lev deque (circular buffer + expand)
//===----------------------------------------------------------------------===//

TEST(ChaseLevFullTest, GrowsPastInitialCapacity) {
  auto M = frontend::compileOrDie(chaseLevFullSource());
  vm::Client C;
  C.InitFunc = "init";
  vm::ThreadScript S;
  for (int V = 1; V <= 10; ++V) {
    vm::MethodCall P;
    P.Func = "put";
    P.Args = {vm::Arg(V)};
    S.Calls.push_back(P);
  }
  for (int I = 0; I < 11; ++I) {
    vm::MethodCall T;
    T.Func = "take";
    S.Calls.push_back(T);
  }
  C.Threads = {S};
  vm::ExecConfig Cfg;
  auto R = vm::runExecution(M, C, Cfg);
  ASSERT_EQ(R.Out, vm::Outcome::Completed) << R.Message;
  // LIFO from the tail: 10, 9, ..., 1, then EMPTY.
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(R.Hist.Ops[10 + I].Ret, static_cast<vm::Word>(10 - I));
  EXPECT_EQ(R.Hist.Ops[20].Ret, EmptyVal);
}

TEST(ChaseLevFullTest, StealsAcrossExpansion) {
  auto M = frontend::compileOrDie(chaseLevFullSource());
  vm::Client C;
  C.InitFunc = "init";
  vm::ThreadScript Owner, Thief;
  for (int V = 1; V <= 8; ++V) {
    vm::MethodCall P;
    P.Func = "put";
    P.Args = {vm::Arg(V)};
    Owner.Calls.push_back(P);
  }
  for (int I = 0; I < 8; ++I) {
    vm::MethodCall St;
    St.Func = "steal";
    Thief.Calls.push_back(St);
  }
  C.Threads = {Owner, Thief};
  synth::SynthConfig Check;
  Check.Model = vm::MemModel::SC;
  Check.Spec = synth::SpecKind::Linearizability;
  Check.Factory = spec::WsqSpec::factory();
  for (uint64_t Seed = 1; Seed <= 60; ++Seed) {
    vm::ExecConfig Cfg;
    Cfg.Model = vm::MemModel::SC;
    Cfg.Seed = Seed;
    auto R = vm::runExecution(M, C, Cfg);
    ASSERT_EQ(R.Out, vm::Outcome::Completed) << R.Message;
    EXPECT_EQ(synth::checkExecution(R, Check), "")
        << "seed " << Seed << "\n"
        << R.Hist.str();
  }
}

TEST(ChaseLevFullTest, SynthesisFindsTakeFenceOnTso) {
  auto M = frontend::compileOrDie(chaseLevFullSource());
  vm::Client C;
  C.InitFunc = "init";
  vm::ThreadScript Owner, Thief;
  auto Call = [](const char *F, std::vector<vm::Arg> A = {}) {
    vm::MethodCall MC;
    MC.Func = F;
    MC.Args = std::move(A);
    return MC;
  };
  Owner.Calls = {Call("put", {1}), Call("put", {2}), Call("take"),
                 Call("take"), Call("take")};
  Thief.Calls = {Call("steal"), Call("steal"), Call("steal"),
                 Call("steal"), Call("steal")};
  C.Threads = {Owner, Thief};
  synth::SynthConfig Cfg;
  Cfg.Model = vm::MemModel::TSO;
  Cfg.Spec = synth::SpecKind::SequentialConsistency;
  Cfg.Factory = spec::WsqSpec::factory();
  Cfg.ExecsPerRound = 1000;
  Cfg.MaxRounds = 12;
  Cfg.MaxRepairRounds = 12;
  Cfg.FlushProb = 0.1;
  auto R = synth::synthesize(M, {C}, Cfg);
  EXPECT_TRUE(R.Converged) << R.FirstViolation;
  bool TakeFence = false;
  for (const auto &F : R.Fences)
    if (F.Function == "take")
      TakeFence = true;
  EXPECT_TRUE(TakeFence) << R.fenceSummary();
}
