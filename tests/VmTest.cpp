//===- VmTest.cpp - Memory, store buffers, interpreter basics -------------===//

#include "frontend/Compiler.h"
#include "vm/Interp.h"
#include "vm/Memory.h"
#include "vm/StoreBuffer.h"

#include <gtest/gtest.h>

using namespace dfence;
using namespace dfence::vm;

//===----------------------------------------------------------------------===//
// Memory / allocation tracker
//===----------------------------------------------------------------------===//

TEST(MemoryTest, AllocateGivesDisjointValidBlocks) {
  Memory M;
  Word A = M.allocate(4);
  Word B = M.allocate(4);
  EXPECT_NE(A, 0u);
  EXPECT_GE(B, A + 4);
  for (Word I = 0; I < 4; ++I) {
    EXPECT_TRUE(M.isValid(A + I));
    EXPECT_TRUE(M.isValid(B + I));
  }
}

TEST(MemoryTest, RedZonesBetweenBlocks) {
  Memory M;
  Word A = M.allocate(2);
  M.allocate(2);
  EXPECT_FALSE(M.isValid(A + 2)) << "red zone must be invalid";
  EXPECT_FALSE(M.isValid(A - 1));
}

TEST(MemoryTest, NullIsInvalid) {
  Memory M;
  EXPECT_FALSE(M.isValid(0));
  EXPECT_FALSE(M.isValid(1));
}

TEST(MemoryTest, FreeInvalidatesAndDetectsUseAfterFree) {
  Memory M;
  Word A = M.allocate(3);
  EXPECT_TRUE(M.freeBlock(A));
  EXPECT_FALSE(M.isValid(A));
  EXPECT_TRUE(M.isFreed(A + 1));
  EXPECT_FALSE(M.freeBlock(A)) << "double free rejected";
}

TEST(MemoryTest, FreeOfNonBlockStartRejected) {
  Memory M;
  Word A = M.allocate(3);
  EXPECT_FALSE(M.freeBlock(A + 1));
  EXPECT_TRUE(M.isValid(A + 1));
}

TEST(MemoryTest, GlobalsCannotBeFreed) {
  Memory M;
  Word G = M.allocateGlobal(2);
  EXPECT_FALSE(M.freeBlock(G));
}

TEST(MemoryTest, AddressesNeverReused) {
  Memory M;
  Word A = M.allocate(2);
  M.freeBlock(A);
  Word B = M.allocate(2);
  EXPECT_NE(A, B);
}

TEST(MemoryTest, ReadWriteRoundTrip) {
  Memory M;
  Word A = M.allocate(2);
  M.write(A, 123);
  M.write(A + 1, 456);
  EXPECT_EQ(M.read(A), 123u);
  EXPECT_EQ(M.read(A + 1), 456u);
}

TEST(MemoryTest, LiveHeapBlockCount) {
  Memory M;
  M.allocateGlobal(1);
  Word A = M.allocate(1);
  M.allocate(1);
  EXPECT_EQ(M.liveHeapBlocks(), 2u);
  M.freeBlock(A);
  EXPECT_EQ(M.liveHeapBlocks(), 1u);
}

//===----------------------------------------------------------------------===//
// Store buffers (Semantics 1)
//===----------------------------------------------------------------------===//

TEST(StoreBufferTest, ScNeverBuffers) {
  StoreBufferSet B(MemModel::SC);
  EXPECT_TRUE(B.empty());
  EXPECT_TRUE(B.emptyFor(5));
  Word Out;
  EXPECT_FALSE(B.forward(5, Out));
}

TEST(StoreBufferTest, TsoFifoOrder) {
  StoreBufferSet B(MemModel::TSO);
  B.push(10, 1, 100);
  B.push(20, 2, 101);
  B.push(10, 3, 102);
  EXPECT_EQ(B.size(), 3u);
  BufferEntry E1 = B.popOldest();
  EXPECT_EQ(E1.Addr, 10u);
  EXPECT_EQ(E1.Val, 1u);
  BufferEntry E2 = B.popOldest();
  EXPECT_EQ(E2.Addr, 20u);
  BufferEntry E3 = B.popOldest();
  EXPECT_EQ(E3.Val, 3u);
  EXPECT_TRUE(B.empty());
}

TEST(StoreBufferTest, TsoForwardingNewestWins) {
  StoreBufferSet B(MemModel::TSO);
  B.push(10, 1, 100);
  B.push(10, 9, 101);
  Word Out = 0;
  EXPECT_TRUE(B.forward(10, Out));
  EXPECT_EQ(Out, 9u);
  EXPECT_FALSE(B.forward(11, Out));
}

TEST(StoreBufferTest, TsoEmptyForIsWholeBuffer) {
  StoreBufferSet B(MemModel::TSO);
  B.push(10, 1, 100);
  EXPECT_FALSE(B.emptyFor(99)) << "TSO CAS premise covers whole buffer";
}

TEST(StoreBufferTest, PsoPerVariableBuffers) {
  StoreBufferSet B(MemModel::PSO);
  B.push(10, 1, 100);
  B.push(20, 2, 101);
  EXPECT_FALSE(B.emptyFor(10));
  EXPECT_FALSE(B.emptyFor(20));
  EXPECT_TRUE(B.emptyFor(30)) << "PSO CAS premise is per-variable";
  BufferEntry E = B.popOldestFor(20);
  EXPECT_EQ(E.Val, 2u);
  EXPECT_TRUE(B.emptyFor(20));
  EXPECT_FALSE(B.empty());
}

TEST(StoreBufferTest, PsoPerVariableFifo) {
  StoreBufferSet B(MemModel::PSO);
  B.push(10, 1, 100);
  B.push(10, 2, 101);
  EXPECT_EQ(B.popOldestFor(10).Val, 1u);
  EXPECT_EQ(B.popOldestFor(10).Val, 2u);
}

TEST(StoreBufferTest, PsoForwarding) {
  StoreBufferSet B(MemModel::PSO);
  B.push(10, 1, 100);
  B.push(10, 5, 101);
  Word Out = 0;
  EXPECT_TRUE(B.forward(10, Out));
  EXPECT_EQ(Out, 5u);
}

TEST(StoreBufferTest, NonEmptyVars) {
  StoreBufferSet P(MemModel::PSO);
  P.push(10, 1, 100);
  P.push(20, 2, 101);
  auto Vars = P.nonEmptyVars();
  EXPECT_EQ(Vars.size(), 2u);

  StoreBufferSet T(MemModel::TSO);
  EXPECT_TRUE(T.nonEmptyVars().empty());
  T.push(10, 1, 100);
  EXPECT_EQ(T.nonEmptyVars().size(), 1u);
}

TEST(StoreBufferTest, PendingLabelsExcludeTargetVariable) {
  StoreBufferSet B(MemModel::PSO);
  B.push(10, 1, 100);
  B.push(20, 2, 101);
  B.push(20, 3, 102);
  std::vector<ir::InstrId> Labels;
  B.pendingLabelsExcept(10, Labels);
  EXPECT_EQ(Labels.size(), 2u);
  Labels.clear();
  B.pendingLabelsExcept(20, Labels);
  ASSERT_EQ(Labels.size(), 1u);
  EXPECT_EQ(Labels[0], 100u);
}

//===----------------------------------------------------------------------===//
// Interpreter basics and memory-safety detection
//===----------------------------------------------------------------------===//

namespace {

ExecResult runClient(const std::string &Src, const Client &C,
                     MemModel Model = MemModel::SC, uint64_t Seed = 1,
                     double FlushProb = 0.5) {
  auto M = frontend::compileOrDie(Src);
  ExecConfig Cfg;
  Cfg.Model = Model;
  Cfg.Seed = Seed;
  Cfg.FlushProb = FlushProb;
  return runExecution(M, C, Cfg);
}

Client oneShot(const char *Func, std::vector<Arg> Args = {}) {
  Client C;
  ThreadScript S;
  MethodCall MC;
  MC.Func = Func;
  MC.Args = std::move(Args);
  S.Calls.push_back(std::move(MC));
  C.Threads.push_back(std::move(S));
  return C;
}

} // namespace

TEST(InterpTest, NullDereferenceDetected) {
  ExecResult R = runClient("int f() { int p = 0; return *p; }",
                           oneShot("f"));
  EXPECT_EQ(R.Out, Outcome::MemSafety);
  EXPECT_NE(R.Message.find("null"), std::string::npos);
}

TEST(InterpTest, OutOfBoundsDetected) {
  ExecResult R = runClient(
      "global int arr[4]; int f() { return arr[4]; }", oneShot("f"));
  EXPECT_EQ(R.Out, Outcome::MemSafety);
}

TEST(InterpTest, UseAfterFreeDetected) {
  ExecResult R = runClient(
      "int f() { int p = malloc(2); free(p); return *p; }", oneShot("f"));
  EXPECT_EQ(R.Out, Outcome::MemSafety);
  EXPECT_NE(R.Message.find("use after free"), std::string::npos);
}

TEST(InterpTest, InvalidFreeDetected) {
  ExecResult R = runClient(
      "int f() { int p = malloc(2); free(p + 1); return 0; }",
      oneShot("f"));
  EXPECT_EQ(R.Out, Outcome::MemSafety);
}

TEST(InterpTest, DoubleFreeDetected) {
  ExecResult R = runClient(
      "int f() { int p = malloc(2); free(p); free(p); return 0; }",
      oneShot("f"));
  EXPECT_EQ(R.Out, Outcome::MemSafety);
}

TEST(InterpTest, AssertFailureDetected) {
  ExecResult R = runClient("int f() { assert(0); return 0; }",
                           oneShot("f"));
  EXPECT_EQ(R.Out, Outcome::AssertFail);
}

TEST(InterpTest, BufferedStoreToFreedMemoryFaultsAtFlush) {
  // Under PSO a store sits in the buffer while the block is freed; the
  // flush (FLUSH rule) must detect the violation (paper §5.2: free does
  // not flush write buffers).
  const char *Src = R"(
int f() {
  int p = malloc(2);
  *p = 5;
  free(p);
  fence();
  return 0;
}
)";
  // FlushProb 0: the scheduler never drains the buffer on its own, so
  // the store is still pending when the block is freed.
  ExecResult R = runClient(Src, oneShot("f"), MemModel::PSO, 3, 0.0);
  EXPECT_EQ(R.Out, Outcome::MemSafety);
  EXPECT_NE(R.Message.find("flush"), std::string::npos);
}

TEST(InterpTest, HistoryRecordsInvocationsAndResponses) {
  const char *Src = R"(
global int G = 0;
int inc(int v) { G = G + v; return G; }
)";
  Client C;
  ThreadScript S;
  MethodCall A;
  A.Func = "inc";
  A.Args = {Arg(2)};
  MethodCall B;
  B.Func = "inc";
  B.Args = {Arg(3)};
  S.Calls = {A, B};
  C.Threads.push_back(S);
  ExecResult R = runClient(Src, C);
  EXPECT_EQ(R.Out, Outcome::Completed);
  ASSERT_EQ(R.Hist.Ops.size(), 2u);
  EXPECT_EQ(R.Hist.Ops[0].Ret, 2u);
  EXPECT_EQ(R.Hist.Ops[1].Ret, 5u);
  EXPECT_TRUE(R.Hist.Ops[0].precedes(R.Hist.Ops[1]));
  EXPECT_TRUE(R.Hist.allComplete());
}

TEST(InterpTest, ArgumentReferencesResolve) {
  const char *Src = R"(
int produce() { return 41; }
int consume(int v) { return v + 1; }
)";
  Client C;
  ThreadScript S;
  MethodCall P;
  P.Func = "produce";
  MethodCall Q;
  Q.Func = "consume";
  Q.Args = {Arg::resultOf(0)};
  S.Calls = {P, Q};
  C.Threads.push_back(S);
  ExecResult R = runClient(Src, C);
  ASSERT_EQ(R.Hist.Ops.size(), 2u);
  EXPECT_EQ(R.Hist.Ops[1].Args[0], 41u);
  EXPECT_EQ(R.Hist.Ops[1].Ret, 42u);
}

TEST(InterpTest, InitFunctionRunsFirst) {
  const char *Src = R"(
global int G = 0;
int init() { G = 100; return 0; }
int get() { return G; }
)";
  Client C = oneShot("get");
  C.InitFunc = "init";
  ExecResult R = runClient(Src, C, MemModel::PSO, 7);
  EXPECT_EQ(R.Out, Outcome::Completed);
  EXPECT_EQ(R.Hist.Ops[0].Ret, 100u);
}

TEST(InterpTest, DeterministicGivenSeed) {
  const char *Src = R"(
global int X = 0;
global int Y = 0;
int t1() { X = 1; return Y; }
int t2() { Y = 1; return X; }
)";
  Client C;
  ThreadScript S1, S2;
  MethodCall M1;
  M1.Func = "t1";
  MethodCall M2;
  M2.Func = "t2";
  S1.Calls = {M1};
  S2.Calls = {M2};
  C.Threads = {S1, S2};
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    ExecResult A = runClient(Src, C, MemModel::TSO, Seed);
    ExecResult B = runClient(Src, C, MemModel::TSO, Seed);
    ASSERT_EQ(A.Hist.Ops.size(), B.Hist.Ops.size());
    for (size_t I = 0; I != A.Hist.Ops.size(); ++I) {
      EXPECT_EQ(A.Hist.Ops[I].Ret, B.Hist.Ops[I].Ret);
      EXPECT_EQ(A.Hist.Ops[I].InvokeSeq, B.Hist.Ops[I].InvokeSeq);
    }
    EXPECT_EQ(A.Steps, B.Steps);
  }
}

TEST(InterpTest, LocksProvideMutualExclusion) {
  const char *Src = R"(
global int L = 0;
global int G = 0;
int bump() {
  lock(&L);
  int v = G;
  G = v + 1;
  unlock(&L);
  return 0;
}
)";
  Client C;
  for (int T = 0; T < 3; ++T) {
    ThreadScript S;
    MethodCall MC;
    MC.Func = "bump";
    S.Calls = {MC, MC};
    C.Threads.push_back(S);
  }
  const char *Check = R"(
global int L = 0;
global int G = 0;
int get() { return G; }
)";
  (void)Check;
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    auto M = frontend::compileOrDie(Src);
    ExecConfig Cfg;
    Cfg.Model = MemModel::PSO;
    Cfg.Seed = Seed;
    Cfg.FlushProb = 0.3;
    ExecResult R = runExecution(M, C, Cfg);
    ASSERT_EQ(R.Out, Outcome::Completed) << R.Message;
    // Read back the final value of G via a sequential run is not possible
    // on the same memory; instead rely on the op count: every bump must
    // have completed, and mutual exclusion means no lost updates, which
    // we verify through a final observer thread in LitmusTest.
    EXPECT_EQ(R.Hist.Ops.size(), 6u);
  }
}

TEST(InterpTest, StepLimitReported) {
  ExecResult R = runClient("int f() { while (1) { } return 0; }",
                           oneShot("f"));
  EXPECT_EQ(R.Out, Outcome::StepLimit);
}

TEST(InterpTest, RunSequentialHelper) {
  auto M = frontend::compileOrDie("int dbl(int x) { return x * 2; }");
  EXPECT_EQ(runSequential(M, "dbl", {21}), 42u);
}

//===----------------------------------------------------------------------===//
// Edge cases: deadlocks, limits, spawn trees
//===----------------------------------------------------------------------===//

TEST(InterpTest, JoinSelfIsDeadlock) {
  ExecResult R = runClient(
      "int f() { join(self()); return 0; }", oneShot("f"));
  EXPECT_TRUE(R.Out == Outcome::Deadlock || R.Out == Outcome::StepLimit)
      << outcomeName(R.Out);
}

TEST(InterpTest, JoinInvalidThreadIsViolation) {
  ExecResult R =
      runClient("int f() { join(99); return 0; }", oneShot("f"));
  EXPECT_EQ(R.Out, Outcome::AssertFail);
}

TEST(InterpTest, ClassicLockOrderDeadlockDetected) {
  const char *Src = R"(
global int L1 = 0;
global int L2 = 0;
int ab() {
  lock(&L1);
  lock(&L2);
  unlock(&L2);
  unlock(&L1);
  return 0;
}
int ba() {
  lock(&L2);
  lock(&L1);
  unlock(&L1);
  unlock(&L2);
  return 0;
}
)";
  auto M = frontend::compileOrDie(Src);
  Client C;
  ThreadScript S1, S2;
  MethodCall M1;
  M1.Func = "ab";
  MethodCall M2;
  M2.Func = "ba";
  S1.Calls = {M1};
  S2.Calls = {M2};
  C.Threads = {S1, S2};
  int Deadlocks = 0;
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    ExecConfig Cfg;
    Cfg.Model = MemModel::SC;
    Cfg.Seed = Seed;
    Cfg.MaxSteps = 1u << 18;
    ExecResult R = runExecution(M, C, Cfg);
    EXPECT_TRUE(R.Out == Outcome::Completed ||
                R.Out == Outcome::Deadlock ||
                R.Out == Outcome::StepLimit)
        << outcomeName(R.Out);
    if (R.Out != Outcome::Completed)
      ++Deadlocks;
  }
  EXPECT_GT(Deadlocks, 0) << "lock-order inversion must deadlock "
                             "under some schedule";
}

TEST(InterpTest, UnreasonableAllocationRejected) {
  ExecResult R = runClient(
      "int f() { int p = malloc(99999999); return p; }", oneShot("f"));
  EXPECT_EQ(R.Out, Outcome::MemSafety);
}

TEST(InterpTest, SpawnedThreadsCanSpawn) {
  const char *Src = R"(
global int G = 0;
int leaf(int v) {
  G = G + v;
  return 0;
}
int mid(int v) {
  int t = spawn(leaf, v);
  join(t);
  return 0;
}
int root() {
  int a = spawn(mid, 1);
  int b = spawn(mid, 2);
  join(a);
  join(b);
  return G;
}
)";
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    ExecResult R = runClient(Src, oneShot("root"), MemModel::PSO, Seed);
    ASSERT_EQ(R.Out, Outcome::Completed) << R.Message;
    // leaf updates race (no lock), so G is 1, 2 or 3; join semantics
    // guarantee visibility, and the root sees the final value.
    EXPECT_GE(R.Hist.Ops[0].Ret, 1u);
    EXPECT_LE(R.Hist.Ops[0].Ret, 3u);
  }
}

TEST(InterpTest, TraceRecordingMatchesStepCount) {
  const char *Src = "global int X = 0; int f() { X = 1; return X; }";
  Client C = oneShot("f");
  ExecConfig Cfg;
  Cfg.Model = MemModel::PSO;
  Cfg.Seed = 5;
  Cfg.RecordTrace = true;
  auto M = frontend::compileOrDie(Src);
  ExecResult R = runExecution(M, C, Cfg);
  EXPECT_EQ(R.Out, Outcome::Completed);
  EXPECT_EQ(R.Trace.size(), R.Steps);
}

TEST(InterpTest, FenceKindsAllDrain) {
  for (const char *Fence : {"fence()", "fence_ss()", "fence_sl()"}) {
    std::string Src = std::string(R"(
global int X = 0;
int f() {
  X = 42;
)") + "  " + Fence + ";\n  return 0;\n}\n";
    // After the fence the buffered store must be in memory: a second
    // sequential call reads it back.
    std::string Src2 = Src + "int g() { return X; }\n";
    auto M = frontend::compileOrDie(Src2);
    Client C;
    ThreadScript S;
    MethodCall F;
    F.Func = "f";
    MethodCall G;
    G.Func = "g";
    S.Calls = {F, G};
    C.Threads = {S};
    ExecConfig Cfg;
    Cfg.Model = MemModel::PSO;
    Cfg.Seed = 7;
    Cfg.FlushProb = 0.0; // Only fences may drain.
    ExecResult R = runExecution(M, C, Cfg);
    ASSERT_EQ(R.Out, Outcome::Completed) << R.Message;
    EXPECT_EQ(R.Hist.Ops[1].Ret, 42u) << Fence;
  }
}
