//===- FlightRecorderDifferentialTest.cpp - profiler never observable -----===//
//
// The flight recorder's headline contract (docs/OBSERVABILITY.md): the
// phase profiler and the convergence telemetry are *read-only* — turning
// them on must not change a single observable bit of a synthesis run.
// For every benchmark in the suite, a run with the profiler attached (and
// a round-log sink draining every round) must produce
//
//   * a SynthResult whose canonical serialization (serve::resultToJson,
//     printed module included) is byte-identical to the profiler-off run,
//   * a deterministic counter snapshot identical after stripping only the
//     obs_* keys — the flight recorder's own series, which exist only
//     when it is on and (for the per-opcode step counters) are not
//     exec-cache-invariant, hence the dedicated prefix,
//
// at jobs 1 and 8, with the caches on and off, under both interpreter
// dispatch modes. The obs_* counters themselves are jobs-invariant (the
// multiset of executed slots does not depend on the pool width), which
// the cache-off comparison pins.
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "obs/Convergence.h"
#include "obs/Obs.h"
#include "programs/Benchmark.h"
#include "serve/Protocol.h"
#include "support/Rng.h"
#include "synth/Synthesizer.h"

#include <gtest/gtest.h>
#include <sstream>

using namespace dfence;
using namespace dfence::programs;
using namespace dfence::synth;
using vm::DispatchMode;
using vm::MemModel;

namespace {

SpecKind strictestSpec(const Benchmark &B) {
  if (B.UseNoGarbage)
    return SpecKind::NoGarbage;
  return B.Factory ? SpecKind::Linearizability : SpecKind::MemorySafety;
}

std::vector<std::string> opcodeNames() {
  std::vector<std::string> Names;
  for (unsigned I = 0; I <= static_cast<unsigned>(ir::Opcode::Nop); ++I)
    Names.push_back(ir::opcodeName(static_cast<ir::Opcode>(I)));
  return Names;
}

struct RunOutput {
  SynthResult R;
  std::string Counters;    ///< countersJson minus obs_* keys.
  std::string ObsCounters; ///< Only the obs_* keys.
  std::string RoundLogText;
};

RunOutput run(const Benchmark &B, MemModel Model, DispatchMode Dispatch,
              unsigned Jobs, bool CacheOn, bool Recorder) {
  auto CR = frontend::compileMiniC(B.Source);
  EXPECT_TRUE(CR.Ok) << B.Name << ": " << CR.Error;
  SynthConfig Cfg;
  Cfg.Model = Model;
  Cfg.Spec = strictestSpec(B);
  Cfg.Factory = B.Factory;
  Cfg.Dispatch = Dispatch;
  Cfg.ExecsPerRound = 150;
  Cfg.MaxRounds = 8;
  Cfg.MaxRepairRounds = 8;
  Cfg.MaxStepsPerExec = 20000;
  Cfg.FlushProb = Model == MemModel::TSO ? 0.1 : 0.5;
  if (Model == MemModel::PSO)
    Cfg.FlushProbs = {0.5, 0.1};
  Cfg.BaseSeed = deriveSeed(0x0b5, B.Name);
  Cfg.Jobs = Jobs;
  Cfg.CacheEnabled = CacheOn;

  obs::Registry Reg;
  obs::ObsContext Obs;
  Obs.Metrics = &Reg;
  Cfg.Obs = &Obs;
  std::optional<obs::Profiler> Prof;
  std::ostringstream RoundLogOS;
  std::optional<obs::RoundLogWriter> RoundLog;
  if (Recorder) {
    Prof.emplace(Reg, opcodeNames());
    Obs.Prof = &*Prof;
    RoundLog.emplace(RoundLogOS);
    Cfg.RoundLog = &*RoundLog;
  }

  RunOutput Out;
  Out.R = synthesize(CR.Module, B.Clients, Cfg);
  Json Doc = Reg.countersJson();
  const Json *Counters = Doc.find("counters");
  Json Plain = Json::object(), ObsOnly = Json::object();
  if (Counters)
    for (const auto &[Key, Val] : Counters->members()) {
      if (Key.rfind("obs_", 0) == 0)
        ObsOnly.set(Key, Val);
      else
        Plain.set(Key, Val);
    }
  Out.Counters = Plain.dump();
  Out.ObsCounters = ObsOnly.dump();
  Out.RoundLogText = RoundLogOS.str();
  return Out;
}

/// Canonical bytes: the daemon's resultToJson with the module embedded
/// is the strictest single serialization of a SynthResult.
std::string canonical(const SynthResult &R) {
  return serve::resultToJson(R, /*IncludeModule=*/true).dump();
}

void expectInvisible(const RunOutput &On, const RunOutput &Off,
                     const std::string &What) {
  EXPECT_EQ(canonical(On.R), canonical(Off.R)) << What;
  EXPECT_EQ(On.Counters, Off.Counters) << What;
  // The recorder-off run must not have grown any obs_* series at all.
  EXPECT_EQ(Off.ObsCounters, "{}") << What;
  EXPECT_NE(On.ObsCounters, "{}") << What;
}

} // namespace

class FlightRecorderDifferentialTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(FlightRecorderDifferentialTest, RecorderNeverChangesResults) {
  const Benchmark &B = benchmarkByName(GetParam());
  for (MemModel Model : {MemModel::TSO, MemModel::PSO}) {
    std::string What =
        B.Name + std::string("/") + vm::memModelName(Model);
    auto Spec = DispatchMode::Specialized;

    // Each axis of the matrix at least once: jobs 8, cache off, generic
    // dispatch — always recorder-on against the same-config recorder-off.
    RunOutput On1 = run(B, Model, Spec, 1, true, true);
    RunOutput Off1 = run(B, Model, Spec, 1, true, false);
    expectInvisible(On1, Off1, What + " jobs1/cache-on/spec");

    RunOutput On8 = run(B, Model, Spec, 8, true, true);
    RunOutput Off8 = run(B, Model, Spec, 8, true, false);
    expectInvisible(On8, Off8, What + " jobs8/cache-on/spec");

    RunOutput OnNc = run(B, Model, Spec, 1, false, true);
    RunOutput OffNc = run(B, Model, Spec, 1, false, false);
    expectInvisible(OnNc, OffNc, What + " jobs1/cache-off/spec");

    RunOutput OnGen =
        run(B, Model, DispatchMode::Generic, 1, true, true);
    RunOutput OffGen =
        run(B, Model, DispatchMode::Generic, 1, true, false);
    expectInvisible(OnGen, OffGen, What + " jobs1/cache-on/generic");

    // The round log drains one line per round, recorder-on only, and
    // the recorder does not change how many rounds a run takes.
    size_t Lines = 0;
    for (char C : On1.RoundLogText)
      Lines += C == '\n';
    EXPECT_EQ(Lines, On1.R.RoundLog.size()) << What;
    EXPECT_TRUE(Off1.RoundLogText.empty()) << What;

    // Jobs-invariance of the recorder's own counters, pinned where the
    // exec cache cannot skew them (cache hits skip execution, and how
    // many accrue before a hit is jobs-independent only with the cache
    // off): the cache-off obs_* snapshot must not depend on pool width.
    RunOutput OnNc8 = run(B, Model, Spec, 8, false, true);
    EXPECT_EQ(OnNc.ObsCounters, OnNc8.ObsCounters)
        << What << " obs counters jobs-variant";

    // Both dispatch modes count opcode steps the same way (one shared
    // interpreter template): identical obs_* snapshots mode-to-mode.
    EXPECT_EQ(On1.ObsCounters, OnGen.ObsCounters)
        << What << " obs counters dispatch-variant";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, FlightRecorderDifferentialTest,
    ::testing::ValuesIn([] {
      std::vector<std::string> Names;
      for (const Benchmark &B : allBenchmarks())
        Names.push_back(B.Name);
      return Names;
    }()),
    [](const auto &Info) {
      std::string Name = Info.param;
      for (char &Ch : Name)
        if (Ch == ' ' || Ch == '-')
          Ch = '_';
      return Name;
    });
