//===- ExtendedSuiteTest.cpp - The beyond-Table-2 algorithms --------------===//

#include "frontend/Compiler.h"
#include "programs/Benchmark.h"
#include "spec/Specs.h"
#include "support/Rng.h"
#include "synth/Synthesizer.h"
#include "vm/Interp.h"

#include <gtest/gtest.h>

using namespace dfence;
using namespace dfence::programs;
using namespace dfence::synth;
using vm::MemModel;

namespace {

SynthResult runSynth(const Benchmark &B, MemModel Model, SpecKind Spec,
                     unsigned K = 1000) {
  auto CR = frontend::compileMiniC(B.Source);
  EXPECT_TRUE(CR.Ok) << CR.Error;
  SynthConfig Cfg;
  Cfg.Model = Model;
  Cfg.Spec = Spec;
  Cfg.Factory = B.Factory;
  Cfg.ExecsPerRound = K;
  Cfg.MaxRounds = 16;
  Cfg.MaxRepairRounds = 16;
  Cfg.MaxStepsPerExec = 30000;
  Cfg.CleanRoundsRequired = 2;
  Cfg.FlushProb = Model == MemModel::TSO ? 0.1 : 0.5;
  if (Model == MemModel::PSO)
    Cfg.FlushProbs = {0.5, 0.1};
  // Per-subject seed streams: with the shared default every benchmark
  // re-ran the same schedule prefix, hiding order-sensitive bugs behind
  // one lucky constant. deriveSeed spreads subjects across the seed
  // space deterministically (golden-pinned in SuiteSweepTest).
  Cfg.BaseSeed = deriveSeed(0x5eed, B.Name);
  return synthesize(CR.Module, B.Clients, Cfg);
}

} // namespace

TEST(ExtendedSuiteTest, RegistryHasFourBenchmarks) {
  EXPECT_EQ(extendedBenchmarks().size(), 4u);
  EXPECT_EQ(benchmarkByName("Peterson Lock").Name, "Peterson Lock");
  EXPECT_EQ(benchmarkByName("Chase-Lev Full").InitFunc, "init");
}

TEST(ExtendedSuiteTest, AllCorrectUnderSC) {
  for (const Benchmark &B : extendedBenchmarks()) {
    auto CR = frontend::compileMiniC(B.Source);
    ASSERT_TRUE(CR.Ok) << B.Name << ": " << CR.Error;
    SynthConfig Check;
    Check.Model = MemModel::SC;
    Check.Spec = SpecKind::Linearizability;
    Check.Factory = B.Factory;
    for (const vm::Client &C : B.Clients) {
      for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
        vm::ExecConfig Cfg;
        Cfg.Model = MemModel::SC;
        Cfg.Seed = Seed;
        vm::ExecResult R = vm::runExecution(CR.Module, C, Cfg);
        ASSERT_EQ(R.Out, vm::Outcome::Completed)
            << B.Name << " seed " << Seed << ": " << R.Message;
        EXPECT_EQ(checkExecution(R, Check), "")
            << B.Name << " seed " << Seed << "\n"
            << R.Hist.str();
      }
    }
  }
}

TEST(ExtendedSuiteTest, PetersonNeedsStoreLoadFencesOnTso) {
  // The textbook result: Peterson's lock is broken by store buffering
  // alone; the flag store must commit before the other flag is read.
  const Benchmark &B = benchmarkByName("Peterson Lock");
  SynthResult R =
      runSynth(B, MemModel::TSO, SpecKind::Linearizability);
  EXPECT_TRUE(R.Converged) << R.FirstViolation;
  EXPECT_GT(R.ViolatingExecutions, 0u)
      << "unfenced Peterson must admit double entry";
  ASSERT_GE(R.Fences.size(), 2u) << R.fenceSummary();
  unsigned StoreLoad = 0;
  for (const auto &F : R.Fences)
    if (F.Kind == ir::FenceKind::StoreLoad)
      ++StoreLoad;
  EXPECT_GE(StoreLoad, 2u)
      << "both roles need their store-load fence: " << R.fenceSummary();
}

TEST(ExtendedSuiteTest, TreiberPushFenceOnPsoOnly) {
  const Benchmark &B = benchmarkByName("Treiber Stack");
  SynthResult Tso =
      runSynth(B, MemModel::TSO, SpecKind::Linearizability);
  EXPECT_TRUE(Tso.Converged) << Tso.FirstViolation;
  EXPECT_EQ(Tso.Fences.size(), 0u)
      << "CAS publication drains the TSO buffer: " << Tso.fenceSummary();

  SynthResult Pso =
      runSynth(B, MemModel::PSO, SpecKind::Linearizability);
  EXPECT_TRUE(Pso.Converged) << Pso.FirstViolation;
  ASSERT_GE(Pso.Fences.size(), 1u);
  EXPECT_EQ(Pso.Fences[0].Function, "push") << Pso.fenceSummary();
}

TEST(ExtendedSuiteTest, LamportRingPublicationFenceOnPso) {
  const Benchmark &B = benchmarkByName("Lamport Ring");
  SynthResult Pso =
      runSynth(B, MemModel::PSO, SpecKind::SequentialConsistency);
  EXPECT_TRUE(Pso.Converged) << Pso.FirstViolation;
  ASSERT_GE(Pso.Fences.size(), 1u);
  EXPECT_EQ(Pso.Fences[0].Function, "enqueue") << Pso.fenceSummary();

  SynthResult Tso =
      runSynth(B, MemModel::TSO, SpecKind::SequentialConsistency);
  EXPECT_TRUE(Tso.Converged);
  EXPECT_EQ(Tso.Fences.size(), 0u)
      << "SPSC ring is SC-clean on TSO: " << Tso.fenceSummary();
}

TEST(ExtendedSuiteTest, ChaseLevFullMatchesSimplifiedShape) {
  const Benchmark &B = benchmarkByName("Chase-Lev Full");
  SynthResult R =
      runSynth(B, MemModel::TSO, SpecKind::SequentialConsistency);
  EXPECT_TRUE(R.Converged) << R.FirstViolation;
  bool TakeFence = false;
  for (const auto &F : R.Fences)
    if (F.Function == "take" && F.Kind == ir::FenceKind::StoreLoad)
      TakeFence = true;
  EXPECT_TRUE(TakeFence) << "F1 as in the simplified deque: "
                         << R.fenceSummary();
}

TEST(ExtendedSuiteTest, PetersonCounterSpecSemantics) {
  spec::CounterSpec S;
  vm::OpRecord Inc;
  Inc.Func = "inc";
  Inc.Completed = true;
  Inc.Ret = 1;
  EXPECT_TRUE(S.apply(Inc));
  Inc.Ret = 2;
  EXPECT_TRUE(S.apply(Inc));
  Inc.Ret = 2; // Duplicate: mutual exclusion failed.
  EXPECT_FALSE(S.clone()->apply(Inc));
  Inc.Ret = 4; // Skip: lost update.
  EXPECT_FALSE(S.apply(Inc));
}

TEST(ExtendedSuiteTest, TreiberStackSpecSemantics) {
  spec::StackSpec S;
  auto Op = [](const char *F, vm::Word Arg, vm::Word Ret) {
    vm::OpRecord O;
    O.Func = F;
    if (std::string(F) == "push")
      O.Args = {Arg};
    O.Ret = Ret;
    O.Completed = true;
    return O;
  };
  EXPECT_TRUE(S.apply(Op("push", 1, 0)));
  EXPECT_TRUE(S.apply(Op("push", 2, 0)));
  EXPECT_TRUE(S.apply(Op("pop", 0, 2)));
  EXPECT_FALSE(S.clone()->apply(Op("pop", 0, 2))) << "LIFO order";
  EXPECT_TRUE(S.apply(Op("pop", 0, 1)));
  EXPECT_TRUE(S.apply(Op("pop", 0, vm::EmptyVal)));
}
