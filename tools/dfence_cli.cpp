//===- dfence_cli.cpp - The dfence command-line tool ----------------------===//
//
// The reproduction's counterpart of the paper's DFENCE tool driver:
//
//   dfence compile <file.mc>
//       Compile MiniC and dump the IR.
//
//   dfence run <file.mc> --func NAME [--args 1,2,...]
//       Run one function sequentially (SC) and print its result.
//
//   dfence litmus <file.mc> --client DSL [--model sc|tso|pso]
//       [--seeds N] [--flush P]
//       Execute a concurrent client many times and print the histogram
//       of per-thread return tuples.
//
//   dfence synth <file.mc> --client DSL [--model tso|pso]
//       [--spec safety|nogarbage|sc|lin] [--seq-spec wsq|queue|...]
//       [--k N] [--rounds N] [--flush P] [--enforce fence|cas|atomic]
//       [--init FUNC] [--no-merge] [--dump]
//       Run dynamic fence synthesis and report the inferred fences.
//
//   dfence bench <benchmark-name> [--model ...] [--spec ...]
//       Synthesis for one of the built-in Table-2 benchmarks
//       ("list" prints their names).
//
//   dfence --replay <bundle.json>
//       Deterministically re-execute a crash-repro bundle captured with
//       --repro and check that the recorded violation reproduces.
//
// Synthesis resilience flags: --exec-ms N (per-execution watchdog),
// --retries N (discard retry budget), --round-ms N / --total-ms N (wall
// budgets; on exhaustion synthesis degrades to conservative static
// fencing), --repro PATH (write crash-repro bundles of violating
// executions).
//
// Synthesis performance: --jobs N runs each round's K executions on N
// worker threads (default: the machine's hardware concurrency). Results
// merge in execution-index order, so the output is bit-identical for any
// N — --jobs only changes the wall clock.
//
// Client DSL: "put(1);take()|steal();steal()" — threads separated by
// '|', calls by ';', '$N' references the thread's N-th return value.
//
//===----------------------------------------------------------------------===//

#include "driver/ClientDsl.h"
#include "driver/SpecRegistry.h"
#include "exec/ExecPool.h"
#include "frontend/Compiler.h"
#include "fuzz/Campaign.h"
#include "fuzz/Generator.h"
#include "fuzz/LitmusCorpus.h"
#include "harness/ReproBundle.h"
#include "ir/Instr.h"
#include "ir/Printer.h"
#include "obs/Convergence.h"
#include "obs/Obs.h"
#include "programs/Benchmark.h"
#include "serve/Server.h"
#include "serve/Transport.h"
#include "support/StringUtils.h"
#include "synth/Synthesizer.h"
#include "vm/Interp.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

using namespace dfence;

namespace {

struct Options {
  std::string Command;
  std::string File;
  std::map<std::string, std::string> Flags;

  bool has(const std::string &K) const { return Flags.count(K) != 0; }
  std::string get(const std::string &K,
                  const std::string &Default = "") const {
    auto It = Flags.find(K);
    return It == Flags.end() ? Default : It->second;
  }
  long getInt(const std::string &K, long Default) const {
    auto It = Flags.find(K);
    return It == Flags.end() ? Default : std::stol(It->second);
  }
  double getDouble(const std::string &K, double Default) const {
    auto It = Flags.find(K);
    return It == Flags.end() ? Default : std::stod(It->second);
  }
};

void printHelp(FILE *Out) {
  std::fprintf(
      Out,
      "usage: dfence <command> <file|name> [flags]\n"
      "\n"
      "commands:\n"
      "  compile <file.mc>               compile MiniC and dump the IR\n"
      "  run     <file.mc>               run one function sequentially "
      "(SC)\n"
      "  litmus  <file.mc>               execute a concurrent client "
      "repeatedly\n"
      "  synth   <file.mc>               dynamic fence synthesis\n"
      "  bench   <name|list>             synthesis on a built-in Table-2 "
      "benchmark\n"
      "  replay  <bundle.json>           re-execute a crash-repro bundle "
      "(also: --replay)\n"
      "  serve                           long-lived synthesis daemon "
      "(JSON-lines)\n"
      "  fuzz                            seeded scenario campaign with "
      "fingerprint dedup\n"
      "  --help                          print this help\n"
      "\n"
      "run flags:\n"
      "  --func NAME         function to call (required)\n"
      "  --args 1,2          comma-separated integer arguments\n"
      "\n"
      "litmus flags:\n"
      "  --client DSL        client script: threads '|', calls ';', "
      "'$N' backrefs\n"
      "  --init FUNC         initialization function run before the "
      "threads\n"
      "  --model sc|tso|pso  memory model (default pso)\n"
      "  --seeds N           number of executions (default 1000)\n"
      "  --flush P           scheduler flush probability (default: "
      "0.1 tso, 0.5 otherwise)\n"
      "\n"
      "synth / bench flags:\n"
      "  --client DSL        client script (synth only; bench has "
      "built-in clients)\n"
      "  --init FUNC         initialization function (synth only)\n"
      "  --model tso|pso     memory model (default pso)\n"
      "  --spec KIND         safety|nogarbage|sc|lin\n"
      "  --seq-spec NAME     sequential spec, one of: %s\n"
      "  --k N               executions per round (default 1000)\n"
      "  --rounds N          maximum rounds (default 16)\n"
      "  --flush P           flush probability (default: per-model "
      "portfolio)\n"
      "  --enforce MODE      fence|cas|atomic (default fence)\n"
      "  --no-merge          keep redundant fences\n"
      "  --dump              print the fenced module\n"
      "  --jobs N            worker threads per round; 0 = hardware "
      "concurrency\n"
      "                      (default 0; the result is bit-identical at "
      "any N)\n"
      "  --cache on|off      result caches: memoized history checking "
      "and the\n"
      "                      cross-round execution cache (default on; "
      "results\n"
      "                      are byte-identical either way)\n"
      "  --dispatch MODE     specialized|generic interpreter dispatch "
      "(default\n"
      "                      specialized: monomorphized per-model loop; "
      "results\n"
      "                      are byte-identical either way)\n"
      "  --exec-ms N         per-execution wall-clock watchdog\n"
      "  --retries N         retry budget for discarded executions "
      "(default 2)\n"
      "  --round-ms N        wall-clock budget per round\n"
      "  --total-ms N        wall-clock budget for the whole run\n"
      "  --wall-clock N      hard deadline in ms: cancels mid-round and "
      "reports\n"
      "                      'result: timeout' with a partial-result "
      "summary\n"
      "  --repro PATH        write crash-repro bundles of violating "
      "executions\n"
      "\n"
      "serve flags:\n"
      "  --jobs N            total worker pool width (0 = hardware)\n"
      "  --slots N           concurrent dispatcher slots, each leasing "
      "its own\n"
      "                      pool slice (default 1 = serial dispatch)\n"
      "  --jobs-per-slot N   pool-slice width per slot (default: --jobs "
      "divided\n"
      "                      evenly across slots, at least 1). "
      "slots x jobs-per-slot\n"
      "                      must not exceed an explicit --jobs\n"
      "  --queue N           admission queue capacity (default 16); "
      "overflow is\n"
      "                      shed with a structured rejected response\n"
      "  --deadline-ms N     default per-request deadline incl. queue "
      "wait\n"
      "  --request-retries N crash-isolation retries before static "
      "fallback\n"
      "  --retry-backoff-ms N  base backoff between request retries "
      "(default 50)\n"
      "  --cache on|off      shared cross-request execution cache\n"
      "  --cache-capacity N  entries in the shared cache (default "
      "32768)\n"
      "  --dispatch MODE     specialized|generic default interpreter "
      "dispatch for\n"
      "                      requests that do not choose one\n"
      "  --crash-dir DIR     where crash reports and repro bundles are "
      "written\n"
      "  --listen PORT       accept JSON-lines connections on "
      "localhost TCP\n"
      "  --socket PATH       accept JSON-lines connections on a unix "
      "socket\n"
      "  --metrics-port PORT HTTP endpoint serving Prometheus metrics\n"
      "  --slow-ms N         warn-log any request whose end-to-end time "
      "(queue\n"
      "                      wait included) exceeds N ms (default 0 = "
      "off)\n"
      "  --no-stdio          do not serve on stdin/stdout (socket-only "
      "daemon)\n"
      "\n"
      "fuzz flags:\n"
      "  --fuzz-seed S       64-bit campaign seed (default 1; hex with "
      "0x); the\n"
      "                      whole campaign is deterministic from it\n"
      "  --count N           generated scenarios (default 100)\n"
      "  --ops A-B           per-thread operation count range (default "
      "1-6)\n"
      "  --threads A-B       thread count range (default 2-4; min 2)\n"
      "  --families a,b      generator families (default all: wsq, iwsq, "
      "queue,\n"
      "                      set, stack, allocator)\n"
      "  --no-litmus         skip the litmus corpus scenarios\n"
      "  --via-serve N       fan the campaign through an in-process "
      "serve daemon\n"
      "                      with N dispatcher slots (default: direct "
      "path)\n"
      "  --model tso|pso     memory model (default pso)\n"
      "  --k N               executions per round per scenario (default "
      "60)\n"
      "  --rounds N          max rounds per scenario (default 6)\n"
      "  --jobs N            worker threads (0 = hardware; results are\n"
      "                      bit-identical at any N)\n"
      "  --cache on|off      result caches (default on)\n"
      "  --dispatch MODE     specialized|generic interpreter dispatch\n"
      "  --report FILE       write the JSONL campaign report (one line "
      "per\n"
      "                      scenario plus a summary line)\n"
      "\n"
      "observability flags (synth / bench):\n"
      "  --metrics-out FILE  write run metrics; .prom/.txt gets "
      "Prometheus text,\n"
      "                      anything else JSON; '-' writes JSON to "
      "stdout\n"
      "                      (also enables the phase profiler: "
      "obs_phase_*\n"
      "                      histograms and obs_op_* step counters)\n"
      "  --round-log FILE    append one JSON line per synthesis round "
      "(violations,\n"
      "                      new predicates, cache hits, SAT effort, "
      "wall time)\n"
      "  --trace-out FILE    write Chrome trace-event JSON (open in "
      "chrome://tracing\n"
      "                      or https://ui.perfetto.dev)\n"
      "  --log-level LEVEL   debug|info|warn|error|off; enables "
      "structured logging\n"
      "  --log-json          emit log lines as JSON objects\n",
      join(driver::knownSpecNames(), "|").c_str());
}

int usage() {
  printHelp(stderr);
  return 2;
}

/// Flags each command accepts; everything else is rejected with exit 2.
/// A leading '=' marks a boolean flag (present/absent, no value).
const std::map<std::string, std::vector<const char *>> &knownFlags() {
  static const std::map<std::string, std::vector<const char *>> Table = {
      {"compile", {}},
      {"run", {"func", "args"}},
      {"litmus", {"client", "init", "model", "seeds", "flush"}},
      {"synth",
       {"client", "init", "model", "spec", "seq-spec", "k", "rounds",
        "flush", "enforce", "=no-merge", "=dump", "jobs", "cache",
        "dispatch", "exec-ms", "retries", "round-ms", "total-ms",
        "wall-clock", "repro", "metrics-out", "trace-out", "round-log",
        "log-level", "=log-json"}},
      {"bench",
       {"model", "spec", "seq-spec", "k", "rounds", "flush", "enforce",
        "=no-merge", "=dump", "jobs", "cache", "dispatch", "exec-ms",
        "retries", "round-ms", "total-ms", "wall-clock", "repro",
        "metrics-out", "trace-out", "round-log", "log-level",
        "=log-json"}},
      // replay knows "round-log" only to reject it with a specific
      // message: a replay runs no rounds, and silently writing an empty
      // log would look like a successful-but-empty run.
      {"replay", {"round-log"}},
      {"serve",
       {"jobs", "slots", "jobs-per-slot", "queue", "deadline-ms",
        "request-retries",
        "retry-backoff-ms", "cache", "cache-capacity", "dispatch",
        "crash-dir",
        "listen", "socket", "metrics-port", "=no-stdio", "metrics-out",
        "slow-ms", "log-level", "=log-json"}},
      // fuzz owns --fuzz-seed; the strict per-command tables are what
      // reject it on every other command (CliObsSmokeTest pins that).
      {"fuzz",
       {"fuzz-seed", "count", "ops", "threads", "families", "=no-litmus",
        "via-serve", "model", "k", "rounds", "jobs", "cache", "dispatch",
        "report", "metrics-out", "log-level", "=log-json"}},
  };
  return Table;
}

std::optional<vm::MemModel> parseModel(const std::string &S) {
  if (S == "sc")
    return vm::MemModel::SC;
  if (S == "tso")
    return vm::MemModel::TSO;
  if (S == "pso")
    return vm::MemModel::PSO;
  return std::nullopt;
}

std::optional<synth::SpecKind> parseSpec(const std::string &S) {
  if (S == "safety")
    return synth::SpecKind::MemorySafety;
  if (S == "nogarbage")
    return synth::SpecKind::NoGarbage;
  if (S == "sc")
    return synth::SpecKind::SequentialConsistency;
  if (S == "lin")
    return synth::SpecKind::Linearizability;
  return std::nullopt;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

int cmdCompile(const Options &Opt) {
  std::string Src;
  if (!readFile(Opt.File, Src)) {
    std::fprintf(stderr, "error: cannot read %s\n", Opt.File.c_str());
    return 1;
  }
  frontend::CompileResult CR = frontend::compileMiniC(Src);
  if (!CR.Ok) {
    std::fprintf(stderr, "%s: error: %s\n", Opt.File.c_str(),
                 CR.Error.c_str());
    return 1;
  }
  std::printf("%s", ir::printModule(CR.Module).c_str());
  std::printf("; %u source lines, %u instructions, %u stores\n",
              CR.SourceLines, CR.Module.totalInstrCount(),
              CR.Module.totalStoreCount());
  return 0;
}

int cmdRun(const Options &Opt) {
  std::string Src;
  if (!readFile(Opt.File, Src)) {
    std::fprintf(stderr, "error: cannot read %s\n", Opt.File.c_str());
    return 1;
  }
  frontend::CompileResult CR = frontend::compileMiniC(Src);
  if (!CR.Ok) {
    std::fprintf(stderr, "%s: error: %s\n", Opt.File.c_str(),
                 CR.Error.c_str());
    return 1;
  }
  std::string Func = Opt.get("func");
  if (Func.empty() || !CR.Module.findFunction(Func)) {
    std::fprintf(stderr, "error: --func must name a function\n");
    return 1;
  }
  std::vector<ir::Word> Args;
  std::string ArgStr = Opt.get("args");
  if (!ArgStr.empty()) {
    std::stringstream SS(ArgStr);
    std::string Tok;
    while (std::getline(SS, Tok, ','))
      Args.push_back(
          static_cast<ir::Word>(static_cast<int64_t>(std::stoll(Tok))));
  }
  ir::Word R = vm::runSequential(CR.Module, Func, Args);
  std::printf("%s(...) = %lld\n", Func.c_str(),
              static_cast<long long>(R));
  return 0;
}

int cmdLitmus(const Options &Opt) {
  std::string Src;
  if (!readFile(Opt.File, Src)) {
    std::fprintf(stderr, "error: cannot read %s\n", Opt.File.c_str());
    return 1;
  }
  frontend::CompileResult CR = frontend::compileMiniC(Src);
  if (!CR.Ok) {
    std::fprintf(stderr, "%s: error: %s\n", Opt.File.c_str(),
                 CR.Error.c_str());
    return 1;
  }
  std::string Error;
  auto Client = driver::parseClientDsl(Opt.get("client"), Error);
  if (!Client) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  Client->InitFunc = Opt.get("init");
  auto Model = parseModel(Opt.get("model", "pso"));
  if (!Model) {
    std::fprintf(stderr, "error: unknown --model\n");
    return 1;
  }
  long Seeds = Opt.getInt("seeds", 1000);
  // The paper's tuned flush-delay probabilities per model (§6.3); an
  // explicit --flush always wins.
  double Flush = Opt.has("flush") ? Opt.getDouble("flush", 0.5)
                                  : vm::defaultFlushProb(*Model);

  std::map<std::string, int> Hist;
  int Violations = 0;
  for (long Seed = 1; Seed <= Seeds; ++Seed) {
    vm::ExecConfig Cfg;
    Cfg.Model = *Model;
    Cfg.Seed = static_cast<uint64_t>(Seed);
    Cfg.FlushProb = Flush;
    vm::ExecResult R = vm::runExecution(CR.Module, *Client, Cfg);
    if (R.Out != vm::Outcome::Completed) {
      ++Violations;
      ++Hist["<" + std::string(vm::outcomeName(R.Out)) + "> " +
             R.Message];
      continue;
    }
    std::vector<std::string> Rets;
    for (const vm::OpRecord &Op : R.Hist.Ops)
      Rets.push_back(strformat("%s=%lld", Op.Func.c_str(),
                               static_cast<long long>(Op.Ret)));
    ++Hist[join(Rets, " ")];
  }
  for (const auto &[Key, Count] : Hist)
    std::printf("%6d  %s\n", Count, Key.c_str());
  std::printf("%ld executions under %s, %d non-completed\n", Seeds,
              vm::memModelName(*Model), Violations);
  return 0;
}

int runSynthesis(const ir::Module &M,
                 const std::vector<vm::Client> &Clients,
                 const Options &Opt, const spec::SpecFactory &Factory,
                 synth::SpecKind Spec) {
  synth::SynthConfig Cfg;
  auto Model = parseModel(Opt.get("model", "pso"));
  if (!Model || *Model == vm::MemModel::SC) {
    std::fprintf(stderr,
                 "error: --model must be tso or pso for synthesis\n");
    return 1;
  }
  Cfg.Model = *Model;
  Cfg.Spec = Spec;
  Cfg.Factory = Factory;
  Cfg.ExecsPerRound = static_cast<unsigned>(Opt.getInt("k", 1000));
  Cfg.MaxRounds = static_cast<unsigned>(Opt.getInt("rounds", 16));
  Cfg.MaxRepairRounds = Cfg.MaxRounds;
  if (Opt.has("flush")) {
    Cfg.FlushProb = Opt.getDouble("flush", 0.5);
  } else if (*Model == vm::MemModel::TSO) {
    Cfg.FlushProb = vm::defaultFlushProb(*Model); // the paper's ~0.1
  } else {
    // PSO portfolio: mostly the tuned PSO probability, with the TSO one
    // mixed in to also catch bugs that need long store delays.
    Cfg.FlushProbs = {vm::defaultFlushProb(vm::MemModel::PSO),
                      vm::defaultFlushProb(vm::MemModel::TSO)};
  }
  std::string Enf = Opt.get("enforce", "fence");
  if (Enf == "cas")
    Cfg.Mode = synth::EnforceMode::CasDummy;
  else if (Enf == "atomic")
    Cfg.Mode = synth::EnforceMode::AtomicSection;
  else if (Enf != "fence") {
    std::fprintf(stderr, "error: unknown --enforce mode\n");
    return 1;
  }
  Cfg.MergeFences = !Opt.has("no-merge");
  // Parallel round engine; 0 = hardware concurrency (the CLI default —
  // deterministic merge makes the result identical at any width).
  Cfg.Jobs = static_cast<unsigned>(Opt.getInt("jobs", 0));
  // Result caches (src/cache/): on by default, and invisible in results
  // by construction — --cache off exists for differential testing and
  // for bounding memory on enormous runs.
  std::string CacheMode = Opt.get("cache", "on");
  if (CacheMode != "on" && CacheMode != "off") {
    std::fprintf(stderr, "error: --cache must be 'on' or 'off'\n");
    return 1;
  }
  Cfg.CacheEnabled = CacheMode == "on";
  // Interpreter dispatch (src/vm/ExecContext.cpp): specialized (the
  // monomorphized per-model loop) by default; --dispatch generic is the
  // A/B + debugging escape hatch. Results are byte-identical either way.
  std::string Dispatch = Opt.get("dispatch", "specialized");
  if (Dispatch == "generic")
    Cfg.Dispatch = vm::DispatchMode::Generic;
  else if (Dispatch != "specialized") {
    std::fprintf(stderr,
                 "error: --dispatch must be 'specialized' or 'generic'\n");
    return 1;
  }

  // Resilience policy: watchdogs, retry budget, wall budgets, bundles.
  Cfg.Exec.ExecWallMs =
      static_cast<uint32_t>(Opt.getInt("exec-ms", 0));
  Cfg.Exec.MaxRetries =
      static_cast<unsigned>(Opt.getInt("retries", Cfg.Exec.MaxRetries));
  Cfg.RoundWallMs = static_cast<uint32_t>(Opt.getInt("round-ms", 0));
  Cfg.TotalWallMs = static_cast<uint32_t>(Opt.getInt("total-ms", 0));
  // --wall-clock is the hard-deadline spelling of the total budget: it
  // also threads into in-flight rounds (the harness caps each
  // execution's watchdog to the remaining time) and flips the report
  // below to an explicit timeout with a partial-result summary.
  if (uint32_t WC = static_cast<uint32_t>(Opt.getInt("wall-clock", 0)))
    if (Cfg.TotalWallMs == 0 || WC < Cfg.TotalWallMs)
      Cfg.TotalWallMs = WC;
  Cfg.SeqSpecName = Opt.get("seq-spec");
  std::string ReproPath = Opt.get("repro");
  if (!ReproPath.empty())
    Cfg.CaptureBundles = true;

  // Observability (src/obs/): each sink is attached only when requested,
  // so a plain run pays nothing but null checks in the engine.
  std::string MetricsOut = Opt.get("metrics-out");
  std::string TraceOut = Opt.get("trace-out");
  obs::Registry Metrics;
  obs::TraceSink Trace;
  auto Level = obs::logLevelByName(Opt.get("log-level", "warn"));
  if (!Level) {
    std::fprintf(stderr, "error: --log-level must be one of "
                         "debug|info|warn|error|off\n");
    return 2;
  }
  obs::Logger Log(*Level, Opt.has("log-json"));
  obs::ObsContext Obs;
  if (!MetricsOut.empty())
    Obs.Metrics = &Metrics;
  if (!TraceOut.empty())
    Obs.Trace = &Trace;
  if (Opt.has("log-level") || Opt.has("log-json"))
    Obs.Log = &Log;
  // The flight recorder's phase profiler rides on the metrics registry:
  // requesting metrics output turns it on, every other run keeps the
  // null-shard fast path (zero clock reads in the engine's hot loops).
  std::optional<obs::Profiler> Prof;
  if (Obs.Metrics) {
    std::vector<std::string> OpNames;
    for (unsigned I = 0; I <= static_cast<unsigned>(ir::Opcode::Nop); ++I)
      OpNames.push_back(ir::opcodeName(static_cast<ir::Opcode>(I)));
    Prof.emplace(Metrics, OpNames);
    Obs.Prof = &*Prof;
  }
  if (Obs.Metrics || Obs.Trace || Obs.Log || Obs.Prof)
    Cfg.Obs = &Obs;

  // Convergence telemetry: one JSON line per round, usable while the
  // run is still going (the writer flushes per line).
  std::string RoundLogPath = Opt.get("round-log");
  std::ofstream RoundLogFile;
  std::optional<obs::RoundLogWriter> RoundLog;
  if (!RoundLogPath.empty()) {
    RoundLogFile.open(RoundLogPath);
    if (!RoundLogFile) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   RoundLogPath.c_str());
      return 1;
    }
    RoundLog.emplace(RoundLogFile);
    Cfg.RoundLog = &*RoundLog;
  }

  synth::SynthResult R = synth::synthesize(M, Clients, Cfg);
  if (R.Status == synth::SynthStatus::ConfigError) {
    std::fprintf(stderr, "error: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("model: %s, spec: %s, K=%u, jobs=%u, cache=%s\n",
              vm::memModelName(Cfg.Model), synth::specKindName(Cfg.Spec),
              Cfg.ExecsPerRound, exec::resolveJobs(Cfg.Jobs),
              CacheMode.c_str());
  for (const synth::RoundStats &S : R.RoundLog)
    std::printf("round %u: %llu violating / %llu executions, %u "
                "enforcement(s) in program\n",
                S.Round, static_cast<unsigned long long>(S.Violations),
                static_cast<unsigned long long>(S.Executions),
                S.FencesEnforced);
  if (R.DiscardedExecutions || R.RetriedExecutions ||
      R.TimedOutExecutions)
    std::printf("harness: %llu discarded, %llu retried, %llu "
                "timed out\n",
                static_cast<unsigned long long>(R.DiscardedExecutions),
                static_cast<unsigned long long>(R.RetriedExecutions),
                static_cast<unsigned long long>(R.TimedOutExecutions));
  if (R.CannotFix)
    std::printf("result: violations not caused by reordering — cannot "
                "be fixed with fences\nfirst violation: %s\n",
                R.FirstViolation.c_str());
  else if (R.TimedOut && Opt.has("wall-clock"))
    // The explicit-deadline spelling reports a timeout with what the
    // partial run established, instead of a bare failure. (--total-ms
    // keeps the historical "degraded" wording below.)
    std::printf("result: timeout — wall-clock deadline (%lld ms) "
                "expired after %u round(s), %llu execution(s) (%llu "
                "violating); partial program carries %zu "
                "enforcement(s), %u from the static fallback\n",
                static_cast<long long>(Opt.getInt("wall-clock", 0)),
                R.Rounds,
                static_cast<unsigned long long>(R.TotalExecutions),
                static_cast<unsigned long long>(R.ViolatingExecutions),
                R.Fences.size(), R.StaticFallbackFences);
  else if (R.Degraded)
    std::printf("result: degraded — %s; fell back to conservative "
                "static fencing (%u fence(s) added)\n",
                R.DegradeReason.c_str(), R.StaticFallbackFences);
  else if (!R.Converged)
    std::printf("result: %s — %s\n", synth::synthStatusName(R.Status),
                R.DegradeReason.c_str());
  else if (R.Fences.empty())
    std::printf("result: no fences needed\n");
  else {
    std::printf("result: %zu enforcement(s)\n", R.Fences.size());
    for (const synth::InsertedFence &F : R.Fences)
      std::printf("  %s\n", F.str().c_str());
  }
  if (!ReproPath.empty()) {
    for (size_t I = 0; I != R.Bundles.size(); ++I) {
      std::string Path =
          I == 0 ? ReproPath : strformat("%s.%zu", ReproPath.c_str(), I);
      std::string Error;
      if (R.Bundles[I].saveFile(Path, Error))
        std::printf("repro bundle: %s\n", Path.c_str());
      else
        std::fprintf(stderr, "warning: %s\n", Error.c_str());
    }
    if (R.Bundles.empty())
      std::printf("repro bundle: none captured (no violating "
                  "executions)\n");
  }
  if (Opt.has("dump"))
    std::printf("%s", ir::printModule(R.FencedModule).c_str());

  if (!MetricsOut.empty()) {
    // File extension picks the exposition format: .prom/.txt gets the
    // Prometheus text format, everything else the JSON document. "-"
    // streams JSON to stdout (the --log-json stream convention), so the
    // "metrics: PATH" confirmation line moves to stderr there.
    auto EndsWith = [&](const char *Suf) {
      size_t N = std::strlen(Suf);
      return MetricsOut.size() >= N &&
             MetricsOut.compare(MetricsOut.size() - N, N, Suf) == 0;
    };
    bool Prom = EndsWith(".prom") || EndsWith(".txt");
    if (MetricsOut == "-") {
      std::printf("%s\n", Metrics.toJson().dump(2).c_str());
    } else {
      std::ofstream Out(MetricsOut);
      if (!Out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     MetricsOut.c_str());
        return 1;
      }
      if (Prom)
        Out << Metrics.toPrometheus();
      else
        Out << Metrics.toJson().dump(2) << "\n";
      std::printf("metrics: %s\n", MetricsOut.c_str());
    }
  }
  if (!TraceOut.empty()) {
    std::string Error;
    if (!Trace.saveFile(TraceOut, Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::printf("trace: %s (%zu events)\n", TraceOut.c_str(),
                Trace.eventCount());
  }
  if (!RoundLogPath.empty())
    std::printf("round log: %s (%zu round(s))\n", RoundLogPath.c_str(),
                R.RoundLog.size());
  // Degraded counts as success: the output program is conservatively
  // fenced and safe, which is the harness's whole point.
  return R.Converged || R.Degraded || R.Fences.empty() ? 0 : 1;
}

int cmdSynth(const Options &Opt) {
  std::string Src;
  if (!readFile(Opt.File, Src)) {
    std::fprintf(stderr, "error: cannot read %s\n", Opt.File.c_str());
    return 1;
  }
  frontend::CompileResult CR = frontend::compileMiniC(Src);
  if (!CR.Ok) {
    std::fprintf(stderr, "%s: error: %s\n", Opt.File.c_str(),
                 CR.Error.c_str());
    return 1;
  }
  std::string Error;
  auto Client = driver::parseClientDsl(Opt.get("client"), Error);
  if (!Client) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  Client->InitFunc = Opt.get("init");

  auto Spec = parseSpec(Opt.get("spec", "safety"));
  if (!Spec) {
    std::fprintf(stderr, "error: unknown --spec\n");
    return 1;
  }
  spec::SpecFactory Factory;
  if (*Spec == synth::SpecKind::SequentialConsistency ||
      *Spec == synth::SpecKind::Linearizability) {
    Factory = driver::specByName(Opt.get("seq-spec"));
    if (!Factory) {
      std::fprintf(stderr,
                   "error: --spec sc/lin needs --seq-spec (one of %s)\n",
                   join(driver::knownSpecNames(), ", ").c_str());
      return 1;
    }
  }
  return runSynthesis(CR.Module, {*Client}, Opt, Factory, *Spec);
}

std::optional<synth::SpecKind> specKindByName(const std::string &S) {
  for (synth::SpecKind K :
       {synth::SpecKind::MemorySafety, synth::SpecKind::NoGarbage,
        synth::SpecKind::SequentialConsistency,
        synth::SpecKind::Linearizability})
    if (S == synth::specKindName(K))
      return K;
  return std::nullopt;
}

int cmdReplay(const Options &Opt) {
  if (Opt.has("round-log")) {
    // A replay runs a single recorded execution, never synthesis rounds;
    // accepting the flag would silently write an empty log.
    std::fprintf(stderr, "error: --round-log does not apply to replay "
                         "(a replay runs no synthesis rounds); use it "
                         "with 'dfence synth' or 'dfence bench'\n");
    return 2;
  }
  std::string Error;
  auto B = harness::ReproBundle::loadFile(Opt.File, Error);
  if (!B) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("bundle: model %s, seed %llu, %zu trace action(s)\n",
              vm::memModelName(B->Model),
              static_cast<unsigned long long>(B->Seed),
              B->Trace.size());
  std::printf("recorded: <%s> %s\n", B->Outcome.c_str(),
              B->Message.c_str());

  auto R = harness::replayBundle(*B, Error);
  if (!R) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  // Reconstruct the diagnostic the recording run saw: VM-level outcomes
  // carry their own message; a Completed history needs the bundle's
  // advisory spec metadata to re-run the checker.
  std::string Message = R->Message;
  if (R->Out == vm::Outcome::Completed && !B->SpecName.empty()) {
    auto Kind = specKindByName(B->SpecName);
    if (!Kind) {
      std::fprintf(stderr, "error: bundle names unknown spec '%s'\n",
                   B->SpecName.c_str());
      return 1;
    }
    synth::SynthConfig Check;
    Check.Spec = *Kind;
    if (!B->SeqSpecName.empty()) {
      Check.Factory = driver::specByName(B->SeqSpecName);
      if (!Check.Factory) {
        std::fprintf(stderr,
                     "error: bundle names unknown seq-spec '%s'\n",
                     B->SeqSpecName.c_str());
        return 1;
      }
    }
    Message = synth::checkExecution(*R, Check);
  }
  std::printf("replayed: <%s> %s\n", vm::outcomeName(R->Out),
              Message.c_str());

  bool OutcomeMatch = vm::outcomeName(R->Out) == B->Outcome;
  bool MessageMatch = Message == B->Message;
  if (OutcomeMatch && MessageMatch) {
    std::printf("replay: reproduced the recorded violation exactly\n");
    return 0;
  }
  std::printf("replay: MISMATCH (%s differ)\n",
              OutcomeMatch ? "messages" : "outcomes");
  return 1;
}

int cmdBench(const Options &Opt) {
  if (Opt.File == "list") {
    for (const programs::Benchmark &B : programs::allBenchmarks())
      std::printf("%-20s %s\n", B.Name.c_str(), B.Description.c_str());
    for (const programs::Benchmark &B : programs::extendedBenchmarks())
      std::printf("%-20s %s (extended suite)\n", B.Name.c_str(),
                  B.Description.c_str());
    return 0;
  }
  const programs::Benchmark *Found = nullptr;
  for (const programs::Benchmark &B : programs::allBenchmarks())
    if (B.Name == Opt.File)
      Found = &B;
  for (const programs::Benchmark &B : programs::extendedBenchmarks())
    if (B.Name == Opt.File)
      Found = &B;
  if (!Found) {
    std::fprintf(stderr,
                 "error: unknown benchmark (try 'dfence bench list')\n");
    return 1;
  }
  frontend::CompileResult CR = frontend::compileMiniC(Found->Source);
  if (!CR.Ok)
    return 1;
  auto Spec = parseSpec(
      Opt.get("spec", Found->UseNoGarbage ? "nogarbage" : "sc"));
  if (!Spec) {
    std::fprintf(stderr, "error: unknown --spec\n");
    return 1;
  }
  return runSynthesis(CR.Module, Found->Clients, Opt, Found->Factory,
                      *Spec);
}

/// `dfence serve`: the long-lived synthesis-as-a-service daemon
/// (src/serve/). One warm worker pool and one shared execution cache
/// serve JSON-lines requests on stdio and/or sockets until SIGTERM,
/// stdin EOF or a shutdown request drains it.
int cmdServe(const Options &Opt) {
  serve::ServeConfig SC;
  SC.Jobs = static_cast<unsigned>(Opt.getInt("jobs", 0));
  SC.Slots = static_cast<unsigned>(Opt.getInt("slots", 1));
  SC.JobsPerSlot =
      static_cast<unsigned>(Opt.getInt("jobs-per-slot", 0));
  if (Opt.has("slots") && SC.Slots == 0) {
    std::fprintf(stderr, "error: --slots must be at least 1\n");
    return 2;
  }
  if (Opt.has("jobs-per-slot") && SC.JobsPerSlot == 0) {
    std::fprintf(stderr, "error: --jobs-per-slot must be at least 1\n");
    return 2;
  }
  // Contradictory widths are a hard error, not a silent re-partition: an
  // explicit --jobs budget must cover one slice per slot.
  if (Opt.has("jobs") && SC.Jobs) {
    unsigned Width =
        SC.Slots * (SC.JobsPerSlot ? SC.JobsPerSlot : 1);
    if (Width > SC.Jobs) {
      std::fprintf(stderr,
                   "error: --slots %u x --jobs-per-slot %u exceeds the "
                   "--jobs %u pool width\n",
                   SC.Slots, SC.JobsPerSlot ? SC.JobsPerSlot : 1,
                   SC.Jobs);
      return 2;
    }
  }
  SC.QueueCapacity = static_cast<size_t>(Opt.getInt("queue", 16));
  SC.DefaultDeadlineMs =
      static_cast<uint32_t>(Opt.getInt("deadline-ms", 0));
  SC.RequestRetries =
      static_cast<unsigned>(Opt.getInt("request-retries", 1));
  SC.RetryBackoffMs =
      static_cast<uint32_t>(Opt.getInt("retry-backoff-ms", 50));
  std::string CacheMode = Opt.get("cache", "on");
  if (CacheMode != "on" && CacheMode != "off") {
    std::fprintf(stderr, "error: --cache must be 'on' or 'off'\n");
    return 2;
  }
  SC.CacheEnabled = CacheMode == "on";
  SC.CacheCapacity =
      static_cast<size_t>(Opt.getInt("cache-capacity", 1 << 15));
  std::string Dispatch = Opt.get("dispatch", "specialized");
  if (Dispatch == "generic")
    SC.Dispatch = vm::DispatchMode::Generic;
  else if (Dispatch != "specialized") {
    std::fprintf(stderr,
                 "error: --dispatch must be 'specialized' or 'generic'\n");
    return 2;
  }
  SC.CrashDir = Opt.get("crash-dir");
  SC.SlowMs = static_cast<uint32_t>(Opt.getInt("slow-ms", 0));

  std::string MetricsOut = Opt.get("metrics-out");
  obs::Registry Metrics;
  auto Level = obs::logLevelByName(Opt.get("log-level", "warn"));
  if (!Level) {
    std::fprintf(stderr, "error: --log-level must be one of "
                         "debug|info|warn|error|off\n");
    return 2;
  }
  obs::Logger Log(*Level, Opt.has("log-json"));
  obs::ObsContext Obs;
  Obs.Metrics = &Metrics; // serve_* metrics are always collected.
  if (Opt.has("log-level") || Opt.has("log-json"))
    Obs.Log = &Log;
  SC.Obs = &Obs;

  serve::TransportOptions TO;
  TO.Stdio = !Opt.has("no-stdio");
  TO.SocketPath = Opt.get("socket");
  TO.TcpPort = Opt.has("listen")
                   ? static_cast<int>(Opt.getInt("listen", -1))
                   : -1;
  TO.MetricsPort =
      Opt.has("metrics-port")
          ? static_cast<int>(Opt.getInt("metrics-port", -1))
          : -1;

  int Rc;
  {
    serve::Server S(SC);
    Rc = serve::runTransport(S, TO);
  } // Server drains before the metrics flush below.

  if (!MetricsOut.empty()) {
    auto EndsWith = [&](const char *Suf) {
      size_t N = std::strlen(Suf);
      return MetricsOut.size() >= N &&
             MetricsOut.compare(MetricsOut.size() - N, N, Suf) == 0;
    };
    if (MetricsOut == "-") {
      // Flushed after the server drained, so stdio transport responses
      // and the metrics document cannot interleave.
      std::printf("%s\n", Metrics.toJson().dump(2).c_str());
    } else {
      std::ofstream Out(MetricsOut);
      if (!Out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     MetricsOut.c_str());
        return 1;
      }
      if (EndsWith(".prom") || EndsWith(".txt"))
        Out << Metrics.toPrometheus();
      else
        Out << Metrics.toJson().dump(2) << "\n";
      std::fprintf(stderr, "metrics: %s\n", MetricsOut.c_str());
    }
  }
  return Rc;
}

/// Parses "N" or "A-B" (inclusive, 1-based). False on malformed input,
/// zero bounds, or an inverted range.
bool parseRange(const std::string &S, unsigned &Lo, unsigned &Hi) {
  try {
    size_t Dash = S.find('-');
    if (Dash == std::string::npos) {
      long V = std::stol(S);
      if (V < 1)
        return false;
      Lo = Hi = static_cast<unsigned>(V);
      return true;
    }
    long A = std::stol(S.substr(0, Dash));
    long B = std::stol(S.substr(Dash + 1));
    if (A < 1 || B < A)
      return false;
    Lo = static_cast<unsigned>(A);
    Hi = static_cast<unsigned>(B);
    return true;
  } catch (const std::exception &) {
    return false;
  }
}

/// `dfence fuzz`: a seeded scenario campaign (src/fuzz/) — generated
/// MiniC clients plus the litmus corpus, run through the normal
/// synthesis path (or an in-process serve daemon with --via-serve),
/// outcomes deduped by repair fingerprint. Stdout carries no wall-clock
/// fields: same seed, same bytes.
int cmdFuzz(const Options &Opt) {
  fuzz::GeneratorOptions GO;
  GO.FuzzSeed = std::stoull(Opt.get("fuzz-seed", "1"), nullptr, 0);
  GO.Count = static_cast<unsigned>(Opt.getInt("count", 100));
  if (GO.Count == 0) {
    std::fprintf(stderr, "error: --count must be at least 1\n");
    return 2;
  }
  if (Opt.has("ops") &&
      !parseRange(Opt.get("ops"), GO.MinOps, GO.MaxOps)) {
    std::fprintf(stderr,
                 "error: --ops must be N or A-B with 1 <= A <= B\n");
    return 2;
  }
  if (Opt.has("threads") &&
      !parseRange(Opt.get("threads"), GO.MinThreads, GO.MaxThreads)) {
    std::fprintf(stderr,
                 "error: --threads must be N or A-B with 1 <= A <= B\n");
    return 2;
  }
  if (Opt.has("families")) {
    std::vector<std::string> Known = fuzz::knownFamilyNames();
    std::stringstream SS(Opt.get("families"));
    std::string Tok;
    while (std::getline(SS, Tok, ',')) {
      if (std::find(Known.begin(), Known.end(), Tok) == Known.end()) {
        std::fprintf(stderr,
                     "error: unknown fuzz family '%s' (one of %s)\n",
                     Tok.c_str(), join(Known, ", ").c_str());
        return 2;
      }
      GO.Families.push_back(Tok);
    }
    if (GO.Families.empty()) {
      std::fprintf(stderr, "error: --families must name at least one "
                           "family\n");
      return 2;
    }
  }

  fuzz::CampaignConfig CC;
  CC.Model = Opt.get("model", "pso");
  auto Model = parseModel(CC.Model);
  if (!Model || *Model == vm::MemModel::SC) {
    std::fprintf(stderr,
                 "error: --model must be tso or pso for fuzzing\n");
    return 2;
  }
  CC.K = static_cast<unsigned>(Opt.getInt("k", 60));
  CC.Rounds = static_cast<unsigned>(Opt.getInt("rounds", 6));
  CC.Jobs = static_cast<unsigned>(Opt.getInt("jobs", 0));
  std::string CacheMode = Opt.get("cache", "on");
  if (CacheMode != "on" && CacheMode != "off") {
    std::fprintf(stderr, "error: --cache must be 'on' or 'off'\n");
    return 2;
  }
  CC.CacheOn = CacheMode == "on";
  std::string Dispatch = Opt.get("dispatch", "specialized");
  if (Dispatch != "specialized" && Dispatch != "generic") {
    std::fprintf(stderr,
                 "error: --dispatch must be 'specialized' or 'generic'\n");
    return 2;
  }
  CC.Dispatch = Dispatch;
  if (Opt.has("via-serve")) {
    long Slots = Opt.getInt("via-serve", 0);
    if (Slots < 1) {
      std::fprintf(stderr, "error: --via-serve must be at least 1\n");
      return 2;
    }
    CC.ServeSlots = static_cast<unsigned>(Slots);
    CC.ServeJobs = CC.Jobs;
  }

  // Observability: same sink-attachment pattern as runSynthesis.
  std::string MetricsOut = Opt.get("metrics-out");
  obs::Registry Metrics;
  auto Level = obs::logLevelByName(Opt.get("log-level", "warn"));
  if (!Level) {
    std::fprintf(stderr, "error: --log-level must be one of "
                         "debug|info|warn|error|off\n");
    return 2;
  }
  obs::Logger Log(*Level, Opt.has("log-json"));
  obs::ObsContext Obs;
  if (!MetricsOut.empty())
    Obs.Metrics = &Metrics;
  if (Opt.has("log-level") || Opt.has("log-json"))
    Obs.Log = &Log;
  if (Obs.Metrics || Obs.Log)
    CC.Obs = &Obs;

  std::ofstream ReportFile;
  std::string ReportPath = Opt.get("report");
  if (!ReportPath.empty()) {
    ReportFile.open(ReportPath);
    if (!ReportFile) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   ReportPath.c_str());
      return 1;
    }
    CC.Report = &ReportFile;
  }

  std::vector<fuzz::Scenario> Corpus = fuzz::generateScenarios(GO);
  size_t Generated = Corpus.size();
  size_t Litmus = 0;
  if (!Opt.has("no-litmus")) {
    for (fuzz::Scenario &S : fuzz::litmusScenarios(GO.FuzzSeed)) {
      Corpus.push_back(std::move(S));
      ++Litmus;
    }
  }

  std::printf("fuzz: model %s, fuzz-seed %llu, %zu generated + %zu "
              "litmus scenario(s), K=%u, rounds=%u, cache=%s, path=%s\n",
              CC.Model.c_str(),
              static_cast<unsigned long long>(GO.FuzzSeed), Generated,
              Litmus, CC.K, CC.Rounds, CacheMode.c_str(),
              CC.ServeSlots
                  ? strformat("serve:%u-slot", CC.ServeSlots).c_str()
                  : "direct");

  fuzz::CampaignResult R = fuzz::runCampaign(Corpus, CC);

  std::printf("scenarios: %llu run, %llu rejected, %llu violating, "
              "%zu distinct fingerprint(s)\n",
              static_cast<unsigned long long>(R.Scenarios),
              static_cast<unsigned long long>(R.Rejected),
              static_cast<unsigned long long>(R.Violating),
              R.Distinct.size());
  if (!R.Distinct.empty()) {
    std::printf("rank  count  fingerprint       family        status      "
                "exemplar\n");
    for (size_t I = 0; I != R.Distinct.size(); ++I) {
      const fuzz::FingerprintBucket &B = R.Distinct[I];
      std::printf("%4zu  %5llu  %s  %-12s  %-10s  %s\n", I + 1,
                  static_cast<unsigned long long>(B.Count),
                  B.Hex.c_str(), B.Family.c_str(), B.Status.c_str(),
                  B.Exemplar.c_str());
      std::printf("      fences: %s\n",
                  B.Fences.empty() ? "(none)"
                                   : join(B.Fences, "; ").c_str());
    }
  }
  if (!ReportPath.empty())
    std::printf("report: %s (%llu line(s))\n", ReportPath.c_str(),
                static_cast<unsigned long long>(R.Scenarios + 1));

  if (!MetricsOut.empty()) {
    auto EndsWith = [&](const char *Suf) {
      size_t N = std::strlen(Suf);
      return MetricsOut.size() >= N &&
             MetricsOut.compare(MetricsOut.size() - N, N, Suf) == 0;
    };
    if (MetricsOut == "-") {
      std::printf("%s\n", Metrics.toJson().dump(2).c_str());
    } else {
      std::ofstream Out(MetricsOut);
      if (!Out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     MetricsOut.c_str());
        return 1;
      }
      if (EndsWith(".prom") || EndsWith(".txt"))
        Out << Metrics.toPrometheus();
      else
        Out << Metrics.toJson().dump(2) << "\n";
      std::printf("metrics: %s\n", MetricsOut.c_str());
    }
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc >= 2 && (std::strcmp(Argv[1], "--help") == 0 ||
                    std::strcmp(Argv[1], "help") == 0)) {
    printHelp(stdout);
    return 0;
  }
  if (Argc < 2)
    return usage();
  Options Opt;
  Opt.Command = Argv[1];
  // `dfence --replay <bundle>` reads naturally at a shell; accept it as
  // a spelling of the replay command.
  if (Opt.Command == "--replay")
    Opt.Command = "replay";
  auto CmdIt = knownFlags().find(Opt.Command);
  if (CmdIt == knownFlags().end()) {
    std::fprintf(stderr, "error: unknown command '%s'\n\n",
                 Opt.Command.c_str());
    return usage();
  }
  // Every command except serve and fuzz takes a positional file/name
  // argument.
  int FlagStart = 3;
  if (Opt.Command == "serve" || Opt.Command == "fuzz") {
    FlagStart = 2;
  } else {
    if (Argc < 3)
      return usage();
    Opt.File = Argv[2];
  }
  const std::vector<const char *> &Known = CmdIt->second;
  for (int I = FlagStart; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A.rfind("--", 0) != 0) {
      std::fprintf(stderr,
                   "error: unexpected argument '%s' (flags start with "
                   "--; see 'dfence --help')\n",
                   A.c_str());
      return 2;
    }
    std::string Key = A.substr(2);
    // Both value-flag spellings are accepted: "--cache off" and
    // "--cache=off".
    std::optional<std::string> Inline;
    if (size_t Eq = Key.find('='); Eq != std::string::npos) {
      Inline = Key.substr(Eq + 1);
      Key = Key.substr(0, Eq);
    }
    bool IsBool = false, IsValue = false;
    for (const char *K : Known) {
      if (K[0] == '=' && Key == K + 1)
        IsBool = true;
      else if (K[0] != '=' && Key == K)
        IsValue = true;
    }
    if (IsBool) {
      if (Inline) {
        std::fprintf(stderr, "error: flag '--%s' takes no value\n",
                     Key.c_str());
        return 2;
      }
      Opt.Flags[Key] = "1";
    } else if (IsValue) {
      if (Inline) {
        Opt.Flags[Key] = *Inline;
        continue;
      }
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: flag '--%s' requires a value\n",
                     Key.c_str());
        return 2;
      }
      Opt.Flags[Key] = Argv[++I];
    } else {
      std::fprintf(stderr,
                   "error: unknown flag '--%s' for command '%s' (see "
                   "'dfence --help')\n",
                   Key.c_str(), Opt.Command.c_str());
      return 2;
    }
  }

  try {
    if (Opt.Command == "compile")
      return cmdCompile(Opt);
    if (Opt.Command == "run")
      return cmdRun(Opt);
    if (Opt.Command == "litmus")
      return cmdLitmus(Opt);
    if (Opt.Command == "synth")
      return cmdSynth(Opt);
    if (Opt.Command == "bench")
      return cmdBench(Opt);
    if (Opt.Command == "replay")
      return cmdReplay(Opt);
    if (Opt.Command == "serve")
      return cmdServe(Opt);
    if (Opt.Command == "fuzz")
      return cmdFuzz(Opt);
  } catch (const std::exception &E) {
    // std::stol / std::stod throw on malformed numeric flag values.
    std::fprintf(stderr,
                 "error: invalid numeric flag value (%s); see "
                 "'dfence --help'\n",
                 E.what());
    return 2;
  }
  return usage();
}
