//===- Client.h - Minimal dfence serve client library -----------*- C++ -*-===//
//
// A small synchronous client for the `dfence serve` daemon's JSON-lines
// protocol (serve/Protocol.h) over a unix-domain socket or localhost
// TCP. One connection, blocking I/O, and response correlation by the
// caller-chosen "id" — which matters now that the daemon dispatches
// concurrently: with several requests pipelined on one connection their
// responses may arrive in any order, and call()/waitFor() reorder them
// for the caller by stashing non-matching lines.
//
// Intended consumers: bench/serve_load (the load generator), tests, and
// ad-hoc tooling. Deliberately not a general RPC framework — no TLS, no
// reconnect, no timeouts beyond the socket's, exactly one in-flight
// reader thread (the caller's).
//
//===----------------------------------------------------------------------===//

#ifndef DFENCE_TOOLS_CLIENT_H
#define DFENCE_TOOLS_CLIENT_H

#include "support/Json.h"

#include <map>
#include <optional>
#include <string>

namespace dfence::client {

class ServeClient {
public:
  /// Connects to a daemon on a unix-domain socket / localhost TCP port
  /// and consumes the hello line. Returns nullopt with \p Error set on
  /// connect failure or a malformed hello.
  static std::optional<ServeClient> connectUnix(const std::string &Path,
                                                std::string &Error);
  static std::optional<ServeClient> connectTcp(int Port,
                                               std::string &Error);

  ServeClient(ServeClient &&O) noexcept;
  ServeClient &operator=(ServeClient &&O) noexcept;
  ServeClient(const ServeClient &) = delete;
  ServeClient &operator=(const ServeClient &) = delete;
  ~ServeClient();

  /// The server's hello object ({"proto":..., "hello":true}).
  const Json &hello() const { return Hello; }

  /// Sends one request object as one JSON line. Does not wait for the
  /// response — pipelining requests is how the load generator keeps
  /// every dispatcher slot busy.
  bool send(const Json &Request, std::string &Error);

  /// Blocks for the next response line in arrival order, skipping any
  /// lines already claimed by waitFor(). Returns nullopt on EOF (clean
  /// shutdown) or error (\p Error set; empty on clean EOF).
  std::optional<Json> recv(std::string &Error);

  /// Blocks until the response whose "id" equals \p Id arrives; other
  /// responses arriving first are stashed for their own waiters.
  std::optional<Json> waitFor(const std::string &Id, std::string &Error);

  /// send + waitFor(request.id): the simple synchronous round trip.
  std::optional<Json> call(const Json &Request, std::string &Error);

private:
  explicit ServeClient(int Fd) : Fd(Fd) {}
  bool readHello(std::string &Error);
  /// One framed line off the socket (blocking, buffered).
  std::optional<std::string> readLine(std::string &Error);

  int Fd = -1;
  std::string Buf;                  ///< Unconsumed read-ahead bytes.
  std::map<std::string, Json> Stash; ///< Responses awaiting their waiter.
  Json Hello;
};

} // namespace dfence::client

#endif // DFENCE_TOOLS_CLIENT_H
