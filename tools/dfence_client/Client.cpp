//===- Client.cpp - Minimal dfence serve client library -------------------===//

#include "dfence_client/Client.h"

#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <utility>

using namespace dfence;
using namespace dfence::client;

std::optional<ServeClient>
ServeClient::connectUnix(const std::string &Path, std::string &Error) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return std::nullopt;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    ::close(Fd);
    Error = "socket path too long: " + Path;
    return std::nullopt;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    Error = "connect " + Path + ": " + std::strerror(errno);
    ::close(Fd);
    return std::nullopt;
  }
  ServeClient C(Fd);
  if (!C.readHello(Error))
    return std::nullopt;
  return C;
}

std::optional<ServeClient> ServeClient::connectTcp(int Port,
                                                   std::string &Error) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return std::nullopt;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    Error = "connect localhost:" + std::to_string(Port) + ": " +
            std::strerror(errno);
    ::close(Fd);
    return std::nullopt;
  }
  ServeClient C(Fd);
  if (!C.readHello(Error))
    return std::nullopt;
  return C;
}

ServeClient::ServeClient(ServeClient &&O) noexcept
    : Fd(std::exchange(O.Fd, -1)), Buf(std::move(O.Buf)),
      Stash(std::move(O.Stash)), Hello(std::move(O.Hello)) {}

ServeClient &ServeClient::operator=(ServeClient &&O) noexcept {
  if (this != &O) {
    if (Fd >= 0)
      ::close(Fd);
    Fd = std::exchange(O.Fd, -1);
    Buf = std::move(O.Buf);
    Stash = std::move(O.Stash);
    Hello = std::move(O.Hello);
  }
  return *this;
}

ServeClient::~ServeClient() {
  if (Fd >= 0)
    ::close(Fd);
}

bool ServeClient::readHello(std::string &Error) {
  auto Line = readLine(Error);
  if (!Line) {
    if (Error.empty())
      Error = "connection closed before hello";
    return false;
  }
  auto J = Json::parse(*Line, Error);
  if (!J) {
    Error = "bad hello line: " + Error;
    return false;
  }
  Hello = std::move(*J);
  return true;
}

std::optional<std::string> ServeClient::readLine(std::string &Error) {
  while (true) {
    size_t Nl = Buf.find('\n');
    if (Nl != std::string::npos) {
      std::string Line = Buf.substr(0, Nl);
      Buf.erase(0, Nl + 1);
      return Line;
    }
    char Chunk[4096];
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N == 0) {
      Error.clear(); // Clean EOF: the daemon drained and closed.
      return std::nullopt;
    }
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = std::string("read: ") + std::strerror(errno);
      return std::nullopt;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
  }
}

bool ServeClient::send(const Json &Request, std::string &Error) {
  std::string Line = Request.dump() + "\n";
  size_t Off = 0;
  while (Off < Line.size()) {
    ssize_t N = ::write(Fd, Line.data() + Off, Line.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = std::string("write: ") + std::strerror(errno);
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

std::optional<Json> ServeClient::recv(std::string &Error) {
  auto Line = readLine(Error);
  if (!Line)
    return std::nullopt;
  auto J = Json::parse(*Line, Error);
  if (!J)
    Error = "bad response line: " + Error;
  return J;
}

std::optional<Json> ServeClient::waitFor(const std::string &Id,
                                         std::string &Error) {
  auto Hit = Stash.find(Id);
  if (Hit != Stash.end()) {
    Json J = std::move(Hit->second);
    Stash.erase(Hit);
    return J;
  }
  // Concurrent slots answer in completion order, not submission order;
  // park strangers until their waiter shows up.
  while (true) {
    auto J = recv(Error);
    if (!J)
      return std::nullopt;
    std::string RespId;
    if (const Json *IdJ = J->find("id"))
      RespId = IdJ->asString();
    if (RespId == Id)
      return J;
    Stash[RespId] = std::move(*J);
  }
}

std::optional<Json> ServeClient::call(const Json &Request,
                                      std::string &Error) {
  if (!send(Request, Error))
    return std::nullopt;
  std::string Id;
  if (const Json *IdJ = Request.find("id"))
    Id = IdJ->asString();
  return waitFor(Id, Error);
}
