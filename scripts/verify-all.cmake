# verify-all: run the default, sanitize and tsan verification workflows
# in sequence, stopping at the first failure.
#
#   cmake -P scripts/verify-all.cmake
#
# A CMake workflow preset cannot chain steps across different configure
# presets, so "verify-all" is this driver over the three single-preset
# workflows (verify-default, verify-sanitize, verify-tsan) defined in
# CMakePresets.json. Run from the repository root. Everything labelled
# tier1 rides along automatically — including the result-cache suite
# (history_hash_test, check_cache_property_test, cache_differential_test,
# bench_cache_smoke), which the tsan leg exercises with the sharded
# CheckCache under real pool concurrency, and the serve-daemon suite
# (serve_protocol_test, server_test, serve_concurrency_test,
# serve_smoke_test), whose smoke test the tsan leg runs against the real
# `dfence serve` binary: submit / dispatcher-slot / transport threads
# plus SIGTERM drain under TSan. serve_concurrency_test is the
# concurrent-dispatcher gate on that leg — multi-slot slice leases,
# sharded-cache locking and the interleaved byte-identity differential
# all execute under TSan (bench_serve_smoke rides the default leg and
# exercises the same paths through the real binary). The
# flight-recorder suite rides along the same way: the
# flight_recorder_differential_test read-only gate and bench_obs_smoke
# (obs_overhead --smoke, which validates BENCH_obs.json; the <=2%
# recorder-off overhead budget is enforced by the full `obs_overhead`
# run, not here — timing bars are meaningless under sanitizers). The
# fuzz suite (fuzz_determinism_test, litmus_corpus_test,
# fuzz_serve_test, bench_fuzz_smoke) is tier1 too: fuzz_serve_test
# hammers the multi-slot dispatcher on the tsan leg, and
# bench_fuzz_smoke (fuzz_campaign --smoke) hard-fails on any
# distinct-fingerprint drift across the direct/warm/serve postures —
# that gate is deterministic, so it holds at smoke sizes and under
# sanitizers alike (scenarios/s bars are full-run only).

foreach(preset IN ITEMS verify-default verify-sanitize verify-tsan)
  message(STATUS "==== workflow: ${preset} ====")
  execute_process(
    COMMAND ${CMAKE_COMMAND} --workflow --preset ${preset}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "workflow ${preset} failed (exit ${rc})")
  endif()
endforeach()
message(STATUS "verify-all: all three workflows passed")
