# verify-all: run the default, sanitize and tsan verification workflows
# in sequence, stopping at the first failure.
#
#   cmake -P scripts/verify-all.cmake
#
# A CMake workflow preset cannot chain steps across different configure
# presets, so "verify-all" is this driver over the three single-preset
# workflows (verify-default, verify-sanitize, verify-tsan) defined in
# CMakePresets.json. Run from the repository root.

foreach(preset IN ITEMS verify-default verify-sanitize verify-tsan)
  message(STATUS "==== workflow: ${preset} ====")
  execute_process(
    COMMAND ${CMAKE_COMMAND} --workflow --preset ${preset}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "workflow ${preset} failed (exit ${rc})")
  endif()
endforeach()
message(STATUS "verify-all: all three workflows passed")
